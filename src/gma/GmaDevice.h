//===- gma/GmaDevice.h - Cycle-level GMA-class device model ----------------===//
//
// Part of the EXOCHI reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated GMA X3000-class accelerator: 8 execution units, each with
/// 4 hardware thread contexts that alternate fetching through fly-weight
/// switch-on-stall multithreading (paper Section 3.4). The device executes
/// XGMA kernels functionally over simulated physical memory while
/// accumulating a first-order timing model: one instruction issues per EU
/// cycle, memory operations stall the issuing context through the shared
/// cache and memory bus, and the EU covers stalls by switching to another
/// ready context on the same EU.
///
/// TLB misses and exceptions suspend the shred and signal the OS-managed
/// IA32 sequencer through the ProxySignalHandler (the MISP exoskeleton),
/// which implements ATR and CEH in src/exo.
///
/// The simulation itself runs as epoch-based parallel discrete-event
/// simulation: each round, host worker threads advance disjoint EU
/// partitions to a shared time horizon, buffering every shared-resource
/// interaction (memory, cache, TLB, sampler, xmit/wait, spawn, proxy
/// calls), which a single thread then resolves in (issue time, EU index)
/// order. Because that schedule never depends on the worker count,
/// results are bit-identical for every GmaConfig::SimThreads setting —
/// including the serial SimThreads=1 path, which runs the same algorithm
/// in-line. See DESIGN.md, "Parallel simulation & determinism contract".
///
/// The host-facing API remains single-threaded: do not call into one
/// GmaDevice from multiple host threads.
///
//===----------------------------------------------------------------------===//

#ifndef EXOCHI_GMA_GMADEVICE_H
#define EXOCHI_GMA_GMADEVICE_H

#include "gma/Gma.h"
#include "gma/KernelTable.h"
#include "gma/Trace.h"
#include "isa/Decoded.h"
#include "mem/CacheModel.h"
#include "mem/PhysicalMemory.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>

namespace exochi {

namespace fault {
class FaultInjector;
}

namespace gma {

/// Action a debugger step hook may request after each instruction.
enum class StepAction : uint8_t {
  Continue, ///< keep running
  Pause,    ///< stop the run loop (debugger takes over)
};

/// Debugger hook: called before each instruction issues. Receives the
/// shred id, kernel id, and pc. Installing a hook forces serial in-line
/// execution so the pause point is a single well-defined machine state.
using StepHook =
    std::function<StepAction(uint32_t ShredId, uint32_t KernelId, uint32_t Pc)>;

/// Why GmaDevice::run returned.
enum class RunExit : uint8_t {
  QueueDrained,      ///< all shreds completed
  Paused,            ///< a StepHook requested a pause
  DeadlinePreempted, ///< the deadline budget expired (ExoServe watchdog)
};

/// The device model. The simulation is deterministic for every
/// SimThreads setting; the public API is not itself thread-safe.
class GmaDevice {
public:
  /// \p SharedKernels shares one device-global kernel table across a
  /// cluster of instances (a private table is created when null), and
  /// \p DeviceIndex identifies this instance inside the cluster (0 for a
  /// single device) — it qualifies fault-injection site keys and trace
  /// spans so per-device schedules stay distinguishable yet
  /// deterministic.
  GmaDevice(const GmaConfig &Config, mem::PhysicalMemory &PM,
            mem::MemoryBus &Bus,
            std::shared_ptr<KernelTable> SharedKernels = nullptr,
            unsigned DeviceIndex = 0);
  ~GmaDevice();

  GmaDevice(const GmaDevice &) = delete;
  GmaDevice &operator=(const GmaDevice &) = delete;

  /// Installs the MISP exoskeleton signal handler (ATR + CEH proxies).
  /// Must be installed before run() services any miss or exception.
  void setProxyHandler(ProxySignalHandler *Handler) { Proxy = Handler; }

  /// Installs a debugger step hook (nullptr to remove).
  void setStepHook(StepHook Hook) { Hook_ = std::move(Hook); }

  /// Installs a shred-span trace recorder (nullptr to remove). Passes the
  /// device geometry along so trace rows and occupancy account for every
  /// hardware context, including idle ones.
  void setTracer(TraceRecorder *T) {
    Tracer = T;
    if (T)
      T->setGeometry(Config.NumEus, Config.ThreadsPerEu);
  }

  /// Installs the FaultLab injector consulted at the device's serial-phase
  /// probe sites (nullptr to remove). A disarmed injector costs ~nothing.
  void setFaultInjector(fault::FaultInjector *Inj) { Injector = Inj; }

  /// Re-dispatch budget before orphans go to the IA32 host lane.
  void setMaxRedispatch(unsigned N) { Config.MaxShredRedispatch = N; }

  /// Per-`wait` timeout (simulated ns; 0 disables).
  void setWaitTimeoutNs(TimeNs T) { Config.WaitTimeoutNs = T; }

  /// ExoServe watchdog: absolute simulated time at which the current run
  /// is preempted (0 disables). Checked at the serial epoch boundary —
  /// after refill, before the advance phase — where the machine has no
  /// in-flight operations, so preemption lands at the same point of the
  /// canonical schedule for every SimThreads value. A run whose last
  /// event completes exactly at the deadline finishes normally; the
  /// first round whose next event would land strictly beyond it returns
  /// RunExit::DeadlinePreempted with resident and queued shreds
  /// cancelled (counted in GmaRunStats::ShredsPreempted).
  void setDeadlineNs(TimeNs D) { DeadlineNs = D; }
  TimeNs deadlineNs() const { return DeadlineNs; }

  /// ExoServe circuit breaker: takes EU \p EuIdx out of refill rotation
  /// (quarantine) or readmits it. Unlike a hard-fail offline, quarantine
  /// survives resetStats() — it represents a policy decision above the
  /// device, applied between runs and lifted only by the caller.
  void setEuQuarantine(unsigned EuIdx, bool On);
  bool euQuarantined(unsigned EuIdx) const;

  /// Overrides GmaConfig::SimThreads: host worker threads for subsequent
  /// runs (0 = one per hardware core). Any value yields bit-identical
  /// simulation results; only wall-clock speed changes.
  void setSimThreads(unsigned N) { Config.SimThreads = N; }

  /// The sim-thread setting currently in effect (0 = auto).
  unsigned simThreads() const { return Config.SimThreads; }

  /// Registers \p Image and returns its kernel id.
  uint32_t registerKernel(KernelImage Image);

  /// Looks up a registered kernel; nullptr when unknown.
  const KernelImage *kernel(uint32_t KernelId) const;

  /// Appends a shred to the software work queue and returns its shred id.
  /// The queue may hold far more shreds than there are hardware contexts.
  uint32_t enqueueShred(ShredDescriptor Desc);

  /// Reserves \p N consecutive shred ids from the device's allocation
  /// sequence and returns the first. The XJIT fast lane draws its ids
  /// here so `sid`-dependent addressing matches the cycle backend
  /// bit-for-bit and ids never collide across backends. Must not be
  /// called while shreds are queued (their ids are already implied).
  uint32_t allocShredIds(uint32_t N) {
    assert(Queue.empty() && "id reservation with shreds queued");
    uint32_t First = NextShredId;
    NextShredId += N;
    return First;
  }

  /// True when a debugger step hook or tracer is installed — execution
  /// observers that only the cycle backend can drive (dispatch falls
  /// back to it while they are attached).
  bool hasExecutionHooks() const {
    return static_cast<bool>(Hook_) || Tracer != nullptr;
  }

  /// True when a debugger step hook specifically is installed. A tracer
  /// merely observes spans (cluster sharding supports it per device); a
  /// step hook pins execution to one serial in-line device.
  bool hasStepHook() const { return static_cast<bool>(Hook_); }

  /// This instance's position in its cluster (0 for a single device).
  unsigned deviceIndex() const { return DeviceIndex_; }

  /// The device-global kernel table this instance executes from.
  const std::shared_ptr<KernelTable> &kernelTable() const { return Kernels; }

  /// The installed FaultLab injector (nullptr when none): shared with the
  /// fast lane so both backends probe one fault schedule.
  fault::FaultInjector *faultInjector() const { return Injector; }

  /// Current device configuration (including set* overrides).
  const GmaConfig &config() const { return Config; }

  /// Number of shreds waiting in the queue (excluding resident ones).
  size_t queuedShreds() const { return Queue.size(); }

  /// Runs until the work queue drains and all contexts idle (or a step
  /// hook pauses the machine). \p StartNs is the simulated time at which
  /// the device begins executing. Fails on unserviceable faults or
  /// deadlock (every resident shred blocked in `wait`).
  Expected<RunExit> run(TimeNs StartNs);

  /// Resumes after a Paused run. Equivalent to run() continuing from the
  /// paused state.
  Expected<RunExit> resume();

  /// Statistics of the current/most recent run (reset by resetStats).
  const GmaRunStats &stats() const { return Stats; }

  /// Clears statistics and the finish clock, keeping kernels registered.
  /// \p RewindFaults also rewinds the installed fault injector so
  /// back-to-back runs replay the same fault schedule; a cluster passes
  /// false for its per-chunk resets (the injector is shared across the
  /// fleet and rewound once per region by the scheduler).
  void resetStats(bool RewindFaults = true);

  /// Invalidates every EU TLB (e.g. after the host changes mappings).
  void invalidateTlbs();

  //===--------------------------------------------------------------------===//
  // Debugger access (used by src/xdbg).
  //===--------------------------------------------------------------------===//

  /// Identifiers of the shreds currently resident in thread contexts.
  std::vector<uint32_t> residentShreds() const;

  /// Register-file view of a resident shred; nullptr when not resident.
  ShredRegView *shredRegs(uint32_t ShredId);

  /// Current pc of a resident shred (nullopt when not resident).
  std::optional<uint32_t> shredPc(uint32_t ShredId) const;

  /// Kernel id a resident shred is executing (nullopt when not resident).
  std::optional<uint32_t> shredKernel(uint32_t ShredId) const;

private:
  struct Context;
  struct Eu;
  struct PendingOp;

  /// Loads the next queued shred into an idle context of \p E (if any).
  /// Fails only when fetching a shared-memory descriptor record faults
  /// unserviceably. Serial phase only.
  Expected<bool> refillContext(Eu &E);

  /// Advances \p E until no context is ready at or before \p Horizon, a
  /// context blocks every runnable slot, a hook pauses, or an error is
  /// recorded. Runs concurrently for distinct EUs: touches only EU-local
  /// state plus read-only kernel images and configuration.
  void advanceEu(Eu &E, TimeNs Horizon);

  /// Issues one instruction from \p Ctx on \p E (advance phase). Local
  /// effects apply immediately; shared-resource interactions are
  /// buffered as PendingOps and the context blocks when the result is
  /// needed to continue.
  void issueInstruction(Eu &E, Context &Ctx);

  /// Chooses the context to issue from (switch-on-stall policy).
  Context *pickReadyContext(Eu &E);

  /// Drains every EU's buffered PendingOps in (issue time, EU, sequence)
  /// order, applying shared-resource arbitration, functional data
  /// movement, proxy calls, and retirement. Serial phase only.
  Error resolvePending();

  /// Folds per-EU statistic shards into Stats (in EU-index order) and
  /// clears the shards. Called at every run/resume exit.
  void mergeStatShards();

  /// Deadline preemption: idles every resident context (recording its
  /// span up to \p Now) and cancels the queue. Serial phase only, with
  /// no buffered PendingOps in flight.
  void preemptAll(TimeNs Now);

  /// Worker threads to use for the next round (accounts for hooks, the
  /// auto setting, and the EU count).
  unsigned effectiveSimThreads() const;

  /// The resident context executing \p ShredId, or nullptr.
  Context *findResident(uint32_t ShredId);

  /// True when an armed FaultLab injector is installed (the gate on every
  /// device probe site and recovery path).
  bool injectionArmed() const;

  /// True when at least one EU has not been offlined by a hard-fail.
  bool anyOnlineEu() const;

  /// FaultLab degradation: takes \p E out of rotation and re-dispatches
  /// every shred resident on it. Serial phase only.
  Error offlineEu(Eu &E);

  /// Re-dispatches the shred in \p Ctx after a fault: restart from its
  /// saved descriptor on a surviving EU, or — once the budget is spent or
  /// no EU survives — on the IA32 host lane. Idles the context.
  Error redispatchShred(Eu &E, Context &Ctx);

  /// Runs an orphaned shred descriptor through the proxy's IA32 lane
  /// (ProxySignalHandler::onShredOrphaned) and books its stats/latency.
  Error hostRedispatch(ShredDescriptor Desc, uint32_t ShredId, TimeNs Now);

  /// Result of a translated, timed memory access: physical segments (in
  /// address order, covering the virtual span) and the completion time.
  struct MemAccess {
    TimeNs Done = 0;
    std::vector<std::pair<mem::PhysAddr, uint64_t>> Segments;
  };

  /// Translates and times a virtual span through the device TLB starting
  /// at \p Now, raising ATR proxy requests on misses. The caller performs
  /// the functional data movement over the returned physical segments and
  /// stalls the context until the completion time. Serial phase only.
  Expected<MemAccess> accessMemoryAt(TimeNs Now, Context &Ctx,
                                     mem::VirtAddr Va, uint64_t Bytes,
                                     bool IsWrite, mem::GpuMemType MemType);

  /// Applies one buffered op (resolve phase).
  Error resolveOne(const PendingOp &Op);

  /// Resolves a buffered Ld/St/LdBlk/StBlk: timing through cache and
  /// bus at the op's issue time, then functional data movement.
  Error resolveLoadStore(Eu &E, Context &Ctx, const PendingOp &Op);

  /// Resolves a buffered `sample`: timed texel fetches, bilinear filter,
  /// and shared-sampler queue arbitration.
  Error resolveSample(Eu &E, Context &Ctx, const PendingOp &Op);

  GmaConfig Config;
  mem::PhysicalMemory &PM;
  mem::MemoryBus &Bus;
  mem::CacheModel Cache;
  mem::Tlb DeviceTlb; ///< the device's internal TLB (shared by all EUs)
  mem::TimeNs SamplerFreeAt = 0; ///< shared fixed-function sampler queue
  ProxySignalHandler *Proxy = nullptr;
  StepHook Hook_;
  TraceRecorder *Tracer = nullptr;
  fault::FaultInjector *Injector = nullptr;

  /// Device-global kernel table (shared across a cluster; private when
  /// constructed stand-alone).
  std::shared_ptr<KernelTable> Kernels;

  /// Position inside the owning cluster (0 stand-alone). Qualifies
  /// fault-injection EU site keys and trace spans.
  unsigned DeviceIndex_ = 0;

  std::deque<ShredDescriptor> Queue;
  uint32_t NextShredId = 1;

  std::vector<std::unique_ptr<Eu>> Eus;
  GmaRunStats Stats;

  /// Cross-shred register mailbox for xmit to non-resident targets:
  /// shred id -> (reg, value) pairs, applied in one lookup at dispatch.
  std::unordered_map<uint32_t, std::vector<std::pair<uint8_t, uint32_t>>>
      Mailbox;

  /// Worker pool for the advance phase (created lazily; sized
  /// effectiveSimThreads() - 1).
  std::unique_ptr<support::ThreadPool> Pool;

  /// Absolute simulated-time deadline of the current run (0 = none).
  TimeNs DeadlineNs = 0;

  bool PausedFlag = false;
  bool PauseRequested = false; ///< set by a hook during a serial advance
};

} // namespace gma
} // namespace exochi

#endif // EXOCHI_GMA_GMADEVICE_H
