//===- gma/GmaDevice.cpp -----------------------------------------------------===//
//
// Part of the EXOCHI reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Epoch-based simulation engine. Every run proceeds in rounds:
//
//   1. refill    (serial)   — dispatch queued shreds into idle contexts,
//                             in EU-index order.
//   2. advance   (parallel) — each worker thread advances its partition
//                             of EUs up to a shared simulated-time
//                             horizon. Instructions with only EU-local
//                             effects (ALU, branches, predication)
//                             execute immediately; every interaction with
//                             a shared resource (memory/cache/TLB/bus,
//                             the sampler, xmit/wait, spawn, proxy ATR
//                             and CEH calls, retirement) is buffered as a
//                             PendingOp. Ops whose result the context
//                             needs block it until the barrier.
//   3. resolve   (serial)   — all buffered ops are drained in
//                             (issue time, EU index, sequence) order.
//                             Arbitration for the bus, cache, TLB,
//                             sampler queue and work queue happens here,
//                             so its outcome depends only on the issue
//                             schedule — never on the worker count.
//
// The per-EU advance is itself deterministic (a context's instruction
// stream depends only on state established at round barriers), so the
// whole simulation is bit-identical for every SimThreads value; the
// serial path simply runs step 2 in-line. Step hooks force the serial
// path, and a hook-requested pause resolves all buffered ops before
// returning so debuggers observe a consistent machine.
//
//===----------------------------------------------------------------------===//

#include "gma/GmaDevice.h"

#include "fault/FaultInjector.h"
#include "support/Format.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>

using namespace exochi;
using namespace exochi::gma;
using namespace exochi::isa;

ShredRegView::~ShredRegView() = default;
ProxySignalHandler::~ProxySignalHandler() = default;

Expected<TimeNs> ProxySignalHandler::onShredOrphaned(const OrphanShred &O) {
  return Error::make(formatString(
      "shred %u (kernel '%s'): no IA32 re-dispatch lane installed",
      O.ShredId, O.KernelName.c_str()));
}

const char *gma::backendName(BackendKind K) {
  switch (K) {
  case BackendKind::Cycle:
    return "cycle";
  case BackendKind::Fast:
    return "fast";
  }
  exochiUnreachable("bad BackendKind");
}

std::optional<BackendKind> gma::parseBackendName(std::string_view Name) {
  if (Name == "cycle")
    return BackendKind::Cycle;
  if (Name == "fast")
    return BackendKind::Fast;
  return std::nullopt;
}

std::string gma::runStatsJson(const GmaRunStats &S) {
  return formatString(
      "{\"backend\": \"%s\", \"start_ns\": %.1f, \"finish_ns\": %.1f, "
      "\"shreds\": %llu, \"instructions\": %llu, \"memory_ops\": %llu, "
      "\"bytes_loaded\": %llu, \"bytes_stored\": %llu, "
      "\"tlb_misses\": %llu, \"proxy_calls\": %llu, "
      "\"exceptions_handled\": %llu, \"sampler_ops\": %llu, "
      "\"issue_cycles\": %.1f, \"faults_injected\": %llu, "
      "\"shreds_redispatched\": %llu, \"host_redispatches\": %llu, "
      "\"shreds_preempted\": %llu}",
      backendName(S.Backend), S.StartNs, S.FinishNs,
      static_cast<unsigned long long>(S.ShredsExecuted),
      static_cast<unsigned long long>(S.Instructions),
      static_cast<unsigned long long>(S.MemoryOps),
      static_cast<unsigned long long>(S.BytesLoaded),
      static_cast<unsigned long long>(S.BytesStored),
      static_cast<unsigned long long>(S.TlbMisses),
      static_cast<unsigned long long>(S.ProxyCalls),
      static_cast<unsigned long long>(S.ExceptionsHandled),
      static_cast<unsigned long long>(S.SamplerOps), S.IssueCycles,
      static_cast<unsigned long long>(S.FaultsInjected),
      static_cast<unsigned long long>(S.ShredsRedispatched),
      static_cast<unsigned long long>(S.HostRedispatches),
      static_cast<unsigned long long>(S.ShredsPreempted));
}

const char *gma::exceptionKindName(ExceptionKind K) {
  switch (K) {
  case ExceptionKind::UnsupportedType:
    return "unsupported-type";
  case ExceptionKind::DivideByZero:
    return "divide-by-zero";
  case ExceptionKind::SurfaceBounds:
    return "surface-bounds";
  case ExceptionKind::InvalidSurface:
    return "invalid-surface";
  }
  exochiUnreachable("bad ExceptionKind");
}

//===----------------------------------------------------------------------===//
// Internal structures
//===----------------------------------------------------------------------===//

/// One hardware thread context (an exo-sequencer).
struct GmaDevice::Context : public ShredRegView {
  enum class State : uint8_t {
    Idle,    ///< no shred loaded
    Running, ///< executing (possibly stalled until StallUntil)
    Blocked, ///< issued a shared-resource op; parked until the barrier
    Waiting, ///< blocked in `wait` on a register ready flag
  };

  State St = State::Idle;
  uint32_t Regs[NumVRegs] = {};
  uint16_t Preds[NumPRegs] = {};
  bool RegReady[NumVRegs] = {};
  uint32_t Pc = 0;
  uint32_t ShredId = 0;
  uint32_t KernelId = 0;
  const KernelImage *Kern = nullptr;
  const isa::DecodedKernel *Dec = nullptr; ///< Kern->Decoded.get()
  std::shared_ptr<const SurfaceTable> Surfaces;
  TimeNs StallUntil = 0;
  uint8_t WaitReg = 0;
  unsigned Slot = 0;          ///< thread-context index within the EU
  TimeNs LoadedAtNs = 0;      ///< dispatch time of the resident shred
  TimeNs WaitSinceNs = 0;     ///< issue time of the pending `wait`
  /// The dispatched descriptor, kept so a faulted shred can be
  /// re-dispatched from scratch (FaultLab degradation ladder).
  ShredDescriptor Desc;

  /// Stride-prefetcher state: a few tracked miss streams per context.
  /// A miss that continues a trained stream (same stride as last time)
  /// is considered prefetched.
  struct PrefetchStream {
    uint64_t LastLine = ~0ull;
    int64_t Stride = 0;
    bool Trained = false;
  };
  PrefetchStream Streams[4];
  unsigned NextStream = 0;

  /// Returns true when the miss on \p Line rides a trained stream, and
  /// updates the stream table.
  bool prefetchHit(uint64_t Line) {
    for (PrefetchStream &S : Streams) {
      if (S.LastLine == ~0ull)
        continue;
      int64_t D = static_cast<int64_t>(Line) - static_cast<int64_t>(S.LastLine);
      if (D == 0)
        return true; // same line re-missed (another chunk)
      if (S.Trained && D == S.Stride) {
        S.LastLine = Line;
        return true;
      }
      if (D != 0 && D > -512 && D < 512 && !S.Trained) {
        S.Stride = D;
        S.Trained = true;
        S.LastLine = Line;
        return false; // training access pays full latency
      }
      if (S.Trained && D != S.Stride && D > -8 && D < 8) {
        // Near the stream but off-stride: retrain.
        S.Stride = D;
        S.LastLine = Line;
        return false;
      }
    }
    // Allocate a new stream slot round-robin.
    Streams[NextStream].LastLine = Line;
    Streams[NextStream].Stride = 0;
    Streams[NextStream].Trained = false;
    NextStream = (NextStream + 1) % 4;
    return false;
  }

  // ShredRegView implementation (CEH / debugger access).
  uint32_t readReg(unsigned Reg) const override {
    assert(Reg < NumVRegs && "register index out of range");
    return Regs[Reg];
  }
  void writeReg(unsigned Reg, uint32_t Value) override {
    assert(Reg < NumVRegs && "register index out of range");
    Regs[Reg] = Value;
  }
  bool readPredLane(unsigned PredReg, unsigned Lane) const override {
    assert(PredReg < NumPRegs && Lane < 16 && "predicate index out of range");
    return (Preds[PredReg] >> Lane) & 1;
  }
  void writePredLane(unsigned PredReg, unsigned Lane, bool Set) override {
    assert(PredReg < NumPRegs && Lane < 16 && "predicate index out of range");
    if (Set)
      Preds[PredReg] |= static_cast<uint16_t>(1u << Lane);
    else
      Preds[PredReg] &= static_cast<uint16_t>(~(1u << Lane));
  }
};

/// A buffered shared-resource interaction, applied at the round barrier.
struct GmaDevice::PendingOp {
  enum class Kind : uint8_t {
    Memory,    ///< Ld/St/LdBlk/StBlk (blocking)
    Sampler,   ///< sample (blocking)
    Exception, ///< CEH proxy call (blocking)
    Xmit,      ///< cross-shred register send (non-blocking)
    Wait,      ///< wait with no locally ready value (blocking)
    Spawn,     ///< child shred enqueue (non-blocking)
    Retire,    ///< halt / end of kernel (blocking; context idles here)
  };

  Kind K = Kind::Memory;
  TimeNs IssueNs = 0;
  uint32_t EuIdx = 0;
  uint32_t Slot = 0;
  uint64_t Seq = 0;    ///< per-EU issue sequence (sort tiebreaker)
  uint32_t NextPc = 0; ///< pc after the op completes

  isa::Instruction Instr; ///< Memory / Sampler / Exception payload
  ExceptionKind Exc = ExceptionKind::UnsupportedType;
  uint32_t Target = 0; ///< Xmit: destination shred id
  uint32_t Value = 0;  ///< Xmit: value; Spawn: child parameter
  uint8_t Reg = 0;     ///< Xmit / Wait register
  TimeNs EndNs = 0;    ///< Retire: span end time
  uint32_t SpawnKernel = 0;
  std::shared_ptr<const SurfaceTable> SpawnSurfaces;
};

/// One execution unit with its four thread contexts. Everything here —
/// including the pending-op buffer and the statistic shards — is owned
/// exclusively by one worker thread during the advance phase.
struct GmaDevice::Eu {
  Eu(unsigned Index, unsigned NumThreads)
      : Index(Index), Contexts(NumThreads) {
    for (unsigned K = 0; K < NumThreads; ++K)
      Contexts[K].Slot = K;
  }

  unsigned Index;
  TimeNs Time = 0;
  std::vector<Context> Contexts;
  int LastIssued = -1;
  bool Offline = false; ///< hard-failed: no refills, buffered ops dropped
  /// Quarantined by the ExoServe circuit breaker: no refills, but unlike
  /// Offline this is a between-runs policy state that resetStats keeps.
  bool Quarantined = false;

  std::vector<PendingOp> Pending;
  uint64_t NextSeq = 0;

  // Statistic shards, merged into GmaRunStats in EU-index order at every
  // run exit so double-precision accumulation order is fixed.
  uint64_t ShardInstructions = 0;
  double ShardIssueCycles = 0;
  TimeNs ShardFinishNs = 0;
  std::string ShardError; ///< first advance-phase error (empty = none)
};

//===----------------------------------------------------------------------===//
// Lane value access helpers
//===----------------------------------------------------------------------===//

namespace {

/// Register index supplying lane \p Lane of operand \p O (handles scalar
/// broadcast and F64 register pairs).
unsigned laneReg(const Operand &O, unsigned Lane, ElemType Ty) {
  unsigned PerLane = Ty == ElemType::F64 ? 2 : 1;
  if (O.regCount() <= PerLane)
    return O.Reg0; // broadcast
  return O.Reg0 + Lane * PerLane;
}

int64_t signExtend(int64_t V, ElemType Ty) {
  switch (Ty) {
  case ElemType::I8:
    return static_cast<int8_t>(V);
  case ElemType::I16:
    return static_cast<int16_t>(V);
  default:
    return static_cast<int32_t>(V);
  }
}

// Issue cost in EU cycles is precomputed per instruction at kernel
// registration (isa::decodedIssueCycles); the interpreter reads it from
// the DecodedInsn instead of re-deriving it every step.

} // namespace

//===----------------------------------------------------------------------===//
// GmaDevice
//===----------------------------------------------------------------------===//

GmaDevice::GmaDevice(const GmaConfig &Config, mem::PhysicalMemory &PM,
                     mem::MemoryBus &Bus,
                     std::shared_ptr<KernelTable> SharedKernels,
                     unsigned DeviceIndex)
    : Config(Config), PM(PM), Bus(Bus),
      Cache(Config.CacheBytes, Config.CacheLineBytes, Config.CacheWays),
      DeviceTlb(Config.TlbEntriesPerEu * Config.NumEus),
      Kernels(SharedKernels ? std::move(SharedKernels)
                            : std::make_shared<KernelTable>()),
      DeviceIndex_(DeviceIndex) {
  for (unsigned K = 0; K < Config.NumEus; ++K)
    Eus.push_back(std::make_unique<Eu>(K, Config.ThreadsPerEu));
}

GmaDevice::~GmaDevice() = default;

uint32_t GmaDevice::registerKernel(KernelImage Image) {
  // Pre-decode once per registration (done inside the table): the
  // interpreter executes from the operand-resolved form instead of
  // re-deriving lane/register mappings and issue costs on every step.
  return Kernels->add(std::move(Image));
}

const KernelImage *GmaDevice::kernel(uint32_t KernelId) const {
  return Kernels->get(KernelId);
}

uint32_t GmaDevice::enqueueShred(ShredDescriptor Desc) {
  assert(kernel(Desc.KernelId) && "enqueue of unregistered kernel");
  Queue.push_back(std::move(Desc));
  return NextShredId + static_cast<uint32_t>(Queue.size()) - 1;
}

void GmaDevice::resetStats(bool RewindFaults) {
  Stats = GmaRunStats();
  SamplerFreeAt = 0;
  for (auto &E : Eus) {
    E->Time = 0;
    E->ShardInstructions = 0;
    E->ShardIssueCycles = 0;
    E->ShardFinishNs = 0;
    E->Offline = false; // a fresh run starts with a healed device
    // E->Quarantined survives: the circuit breaker, not the device,
    // decides when a misbehaving EU rejoins the rotation.
  }
  // Run setup rewinds the injector's per-site occurrence counters and
  // fired log so back-to-back jobs replay the same fault schedule. A
  // cluster's per-chunk resets skip the rewind: the injector is shared
  // across the fleet and rewound once per region by the scheduler.
  if (RewindFaults && Injector)
    Injector->reset();
}

bool GmaDevice::injectionArmed() const {
  return Injector && Injector->armed();
}

bool GmaDevice::anyOnlineEu() const {
  for (const auto &E : Eus)
    if (!E->Offline && !E->Quarantined)
      return true;
  return false;
}

void GmaDevice::setEuQuarantine(unsigned EuIdx, bool On) {
  assert(EuIdx < Eus.size() && "EU index out of range");
  Eus[EuIdx]->Quarantined = On;
}

bool GmaDevice::euQuarantined(unsigned EuIdx) const {
  assert(EuIdx < Eus.size() && "EU index out of range");
  return Eus[EuIdx]->Quarantined;
}

void GmaDevice::invalidateTlbs() { DeviceTlb.invalidateAll(); }

unsigned GmaDevice::effectiveSimThreads() const {
  if (Hook_)
    return 1; // hooks need one well-defined serial pause point
  unsigned N = Config.SimThreads;
  if (N == 0) {
    N = std::thread::hardware_concurrency();
    if (N == 0)
      N = 1;
  }
  return std::max(1u, std::min(N, Config.NumEus));
}

std::vector<uint32_t> GmaDevice::residentShreds() const {
  std::vector<uint32_t> Out;
  for (const auto &E : Eus)
    for (const Context &C : E->Contexts)
      if (C.St != Context::State::Idle)
        Out.push_back(C.ShredId);
  return Out;
}

ShredRegView *GmaDevice::shredRegs(uint32_t ShredId) {
  return findResident(ShredId);
}

GmaDevice::Context *GmaDevice::findResident(uint32_t ShredId) {
  for (auto &E : Eus)
    for (Context &C : E->Contexts)
      if (C.St != Context::State::Idle && C.ShredId == ShredId)
        return &C;
  return nullptr;
}

std::optional<uint32_t> GmaDevice::shredPc(uint32_t ShredId) const {
  for (const auto &E : Eus)
    for (const Context &C : E->Contexts)
      if (C.St != Context::State::Idle && C.ShredId == ShredId)
        return C.Pc;
  return std::nullopt;
}

std::optional<uint32_t> GmaDevice::shredKernel(uint32_t ShredId) const {
  for (const auto &E : Eus)
    for (const Context &C : E->Contexts)
      if (C.St != Context::State::Idle && C.ShredId == ShredId)
        return C.KernelId;
  return std::nullopt;
}

Expected<bool> GmaDevice::refillContext(Eu &E) {
  if (E.Offline || E.Quarantined || Queue.empty())
    return false;
  Context *Free = nullptr;
  for (Context &C : E.Contexts)
    if (C.St == Context::State::Idle) {
      Free = &C;
      break;
    }
  if (!Free)
    return false;

  ShredDescriptor Desc = std::move(Queue.front());
  Queue.pop_front();

  Context &C = *Free;
  std::memset(C.Regs, 0, sizeof(C.Regs));
  std::memset(C.Preds, 0, sizeof(C.Preds));
  std::memset(C.RegReady, 0, sizeof(C.RegReady));
  C.Pc = 0;
  // A re-dispatched shred keeps its id so xmit targets and the trace
  // still address the same logical shred.
  C.ShredId = Desc.FixedShredId ? Desc.FixedShredId : NextShredId++;
  C.KernelId = Desc.KernelId;
  C.Kern = kernel(Desc.KernelId);
  assert(C.Kern && "dispatching unregistered kernel");
  C.Dec = C.Kern->Decoded.get();
  C.Desc = std::move(Desc); // kept for fault re-dispatch
  C.Surfaces = C.Desc.Surfaces;
  C.St = Context::State::Running;
  // Firmware dispatch cost (descriptor -> hardware command translation).
  C.StallUntil = E.Time + Config.ShredDispatchNs;
  C.LoadedAtNs = E.Time;
  C.WaitSinceNs = 0;

  if (C.Desc.RecordVa != 0 && !C.Desc.Params.empty()) {
    // The continuation record lives in shared virtual memory (paper
    // Section 3.4): the firmware fetches it through the same translated
    // path as data, so descriptor pages take ATR misses like any other.
    uint64_t Bytes = C.Desc.Params.size() * 4;
    auto Acc = accessMemoryAt(E.Time, C, C.Desc.RecordVa, Bytes,
                              /*IsWrite=*/false, mem::GpuMemType::Cached);
    if (!Acc) {
      if (injectionArmed()) {
        // Survive an injected descriptor-fetch fault: send the shred back
        // through the re-dispatch ladder (bounded by MaxShredRedispatch,
        // then the IA32 host lane).
        if (Error Err = redispatchShred(E, C))
          return Err;
        return true;
      }
      return Error::make("shred descriptor fetch failed: " +
                         Acc.message());
    }
    std::vector<uint8_t> Buf(Bytes);
    uint64_t Ofs = 0;
    for (auto &[Pa, N] : Acc->Segments) {
      PM.read(Pa, Buf.data() + Ofs, N);
      Ofs += N;
    }
    for (size_t K = 0; K < C.Desc.Params.size() && K < NumVRegs; ++K)
      std::memcpy(&C.Regs[K], Buf.data() + K * 4, 4);
    C.StallUntil = std::max(C.StallUntil, Acc->Done);
  } else {
    for (size_t K = 0; K < C.Desc.Params.size() && K < NumVRegs; ++K)
      C.Regs[K] = static_cast<uint32_t>(C.Desc.Params[K]);
  }

  // Deliver any cross-shred register writes sent before this shred ran:
  // one mailbox lookup per dispatch instead of one per register.
  if (!Mailbox.empty()) {
    auto It = Mailbox.find(C.ShredId);
    if (It != Mailbox.end()) {
      for (const auto &[R, V] : It->second) {
        C.Regs[R] = V;
        C.RegReady[R] = true;
      }
      Mailbox.erase(It);
    }
  }
  return true;
}

GmaDevice::Context *GmaDevice::pickReadyContext(Eu &E) {
  // Switch-on-stall: keep issuing from the last context while it is
  // ready; otherwise rotate to the next ready one.
  unsigned N = static_cast<unsigned>(E.Contexts.size());
  if (E.LastIssued >= 0) {
    Context &C = E.Contexts[static_cast<unsigned>(E.LastIssued)];
    if (C.St == Context::State::Running && C.StallUntil <= E.Time)
      return &C;
  }
  for (unsigned K = 1; K <= N; ++K) {
    unsigned Idx = (static_cast<unsigned>(E.LastIssued + 1) + K - 1) % N;
    Context &C = E.Contexts[Idx];
    if (C.St == Context::State::Running && C.StallUntil <= E.Time) {
      E.LastIssued = static_cast<int>(Idx);
      return &C;
    }
  }
  return nullptr;
}

Expected<GmaDevice::MemAccess>
GmaDevice::accessMemoryAt(TimeNs Now, Context &Ctx, mem::VirtAddr Va,
                          uint64_t Bytes, bool IsWrite,
                          mem::GpuMemType MemType) {
  MemAccess Out;
  ++Stats.MemoryOps;

  uint64_t Remaining = Bytes;
  mem::VirtAddr Cur = Va;
  while (Remaining > 0) {
    uint64_t Chunk = std::min(Remaining, mem::PageSize - mem::pageOffset(Cur));
    uint64_t Vpn = mem::pageNumber(Cur);

    std::optional<mem::GpuPte> Pte = DeviceTlb.lookup(Vpn);
    if (!Pte) {
      // ATR: suspend and signal the IA32 sequencer for proxy execution.
      ++Stats.TlbMisses;
      if (!Proxy)
        return Error::make("TLB miss with no proxy handler installed");
      ++Stats.ProxyCalls;
      auto Latency =
          Proxy->onTranslationMiss(Cur, IsWrite, MemType, DeviceTlb);
      if (Latency)
        Stats.ProxyStallNs += *Latency;
      if (!Latency)
        return Error::make(formatString(
            "shred %u: unserviceable fault at 0x%llx: %s", Ctx.ShredId,
            static_cast<unsigned long long>(Cur), Latency.message().c_str()));
      Now += *Latency;
      Pte = DeviceTlb.lookup(Vpn);
      if (!Pte)
        return Error::make("proxy handler did not install a TLB entry");
    }
    if (IsWrite && !Pte->writable())
      return Error::make(formatString(
          "shred %u: write to read-only page 0x%llx", Ctx.ShredId,
          static_cast<unsigned long long>(Cur)));

    mem::PhysAddr Pa = (Pte->frame() << mem::PageShift) | mem::pageOffset(Cur);
    Out.Segments.push_back({Pa, Chunk});

    // Timing. Loads through the shared cache stall the issuing context
    // (hits briefly, misses for a DRAM round trip); stores drain through
    // write buffers and never stall — they only consume bus bandwidth,
    // which later loads contend with.
    if (IsWrite) {
      (void)Bus.request(Now, Chunk);
      if (Pte->memType() == mem::GpuMemType::Cached) {
        uint64_t Line = Config.CacheLineBytes;
        for (uint64_t L = Pa / Line; L <= (Pa + Chunk - 1) / Line; ++L) {
          auto R = Cache.access(L * Line, /*IsWrite=*/true);
          if (R.Hit)
            ++Stats.CacheHits;
          if (R.WritebackVictim)
            (void)Bus.request(Now, Line);
        }
      }
    } else if (Pte->memType() == mem::GpuMemType::Cached) {
      uint64_t Line = Config.CacheLineBytes;
      uint64_t First = Pa / Line, Last = (Pa + Chunk - 1) / Line;
      TimeNs Done = Now;
      for (uint64_t L = First; L <= Last; ++L) {
        auto R = Cache.access(L * Line, /*IsWrite=*/false);
        if (R.Hit) {
          ++Stats.CacheHits;
          Done = std::max(Done, Now + Config.CacheHitNs);
        } else {
          ++Stats.CacheMisses;
          // Misses that continue a trained stride stream ride the
          // hardware prefetcher: DRAM latency is hidden, bandwidth paid.
          bool Streamed = Ctx.prefetchHit(L);
          Done = std::max(Done, Streamed ? Bus.requestStreamed(Now, Line)
                                         : Bus.request(Now, Line));
        }
        if (R.WritebackVictim)
          (void)Bus.request(Now, Line);
      }
      Now = Done;
    } else {
      Now = Bus.request(Now, Chunk);
    }

    Cur += Chunk;
    Remaining -= Chunk;
  }

  if (IsWrite)
    Stats.BytesStored += Bytes;
  else
    Stats.BytesLoaded += Bytes;
  Out.Done = Now;
  return Out;
}

//===----------------------------------------------------------------------===//
// Instruction execution (advance phase: EU-local effects only)
//===----------------------------------------------------------------------===//

void GmaDevice::issueInstruction(Eu &E, Context &Ctx) {
  const std::vector<Instruction> &Code = Ctx.Kern->Code;

  // Buffers \p Op with the common scheduling fields filled in.
  auto Defer = [&](PendingOp Op, uint32_t NextPc) {
    Op.IssueNs = E.Time;
    Op.EuIdx = E.Index;
    Op.Slot = Ctx.Slot;
    Op.Seq = E.NextSeq++;
    Op.NextPc = NextPc;
    E.Pending.push_back(std::move(Op));
  };

  // Running past the end of the kernel behaves as halt.
  if (Ctx.Pc >= Code.size()) {
    PendingOp Op;
    Op.K = PendingOp::Kind::Retire;
    Op.EndNs = std::max(E.Time, Ctx.StallUntil);
    Defer(std::move(Op), Ctx.Pc);
    Ctx.St = Context::State::Blocked;
    return;
  }

  const Instruction &I = Code[Ctx.Pc];
  const isa::DecodedInsn &DI = Ctx.Dec->Insns[Ctx.Pc];
  ++E.ShardInstructions;
  E.ShardIssueCycles += DI.IssueCycles;
  E.Time += DI.IssueCycles * Config.cycleNs();
  E.ShardFinishNs = std::max(E.ShardFinishNs, E.Time);

  uint32_t NextPc = Ctx.Pc + 1;

  // Defers a CEH exception for the proxy; the context parks until the
  // barrier, where the (serial) proxy call decides skip-or-terminate.
  auto RaiseException = [&](ExceptionKind Kind) {
    PendingOp Op;
    Op.K = PendingOp::Kind::Exception;
    Op.Instr = I;
    Op.Exc = Kind;
    Defer(std::move(Op), NextPc);
    Ctx.St = Context::State::Blocked;
  };

  // Per-lane predication test.
  auto LaneEnabled = [&](unsigned Lane) {
    if (I.PredReg == NoPred)
      return true;
    bool Bit = (Ctx.Preds[I.PredReg] >> Lane) & 1;
    return I.PredNegate ? !Bit : Bit;
  };

  // Lane readers over the pre-decoded operands (integer semantics use
  // 64-bit intermediates). The decoded stride already encodes broadcast
  // vs. per-lane register groups and F64 pairs.
  auto ReadIntLane = [&](const isa::DecodedOperand &O,
                         unsigned Lane) -> int64_t {
    if (O.IsImm)
      return O.Imm;
    return static_cast<int32_t>(Ctx.Regs[O.Reg0 + Lane * O.Stride]);
  };
  auto ReadF32Lane = [&](const isa::DecodedOperand &O,
                         unsigned Lane) -> float {
    uint32_t Bits = O.IsImm ? static_cast<uint32_t>(O.Imm)
                            : Ctx.Regs[O.Reg0 + Lane * O.Stride];
    float F;
    std::memcpy(&F, &Bits, 4);
    return F;
  };
  auto WriteIntLane = [&](const isa::DecodedOperand &O, unsigned Lane,
                          int64_t V) {
    Ctx.Regs[O.Reg0 + Lane * O.Stride] =
        static_cast<uint32_t>(signExtend(V, I.Ty));
  };
  auto WriteF32Lane = [&](const isa::DecodedOperand &O, unsigned Lane,
                          float F) {
    uint32_t Bits;
    std::memcpy(&Bits, &F, 4);
    Ctx.Regs[O.Reg0 + Lane * O.Stride] = Bits;
  };
  // Scalar value of an index operand.
  auto ScalarVal = [&](const isa::DecodedOperand &O) -> int64_t {
    if (O.IsImm)
      return O.Imm;
    return static_cast<int32_t>(Ctx.Regs[O.Reg0]);
  };

  switch (I.Op) {
  case Opcode::Nop:
    break;

  case Opcode::Halt: {
    PendingOp Op;
    Op.K = PendingOp::Kind::Retire;
    Op.EndNs = std::max(E.Time, Ctx.StallUntil);
    Defer(std::move(Op), NextPc);
    Ctx.St = Context::State::Blocked;
    return;
  }

  case Opcode::Jmp:
    NextPc = static_cast<uint32_t>(I.Src0.Imm);
    break;

  case Opcode::Br: {
    bool Bit = (Ctx.Preds[I.PredReg] & 1) != 0; // lane 0
    if (I.PredNegate ? !Bit : Bit)
      NextPc = static_cast<uint32_t>(I.Src0.Imm);
    break;
  }

  case Opcode::Sid:
    Ctx.Regs[I.Dst.Reg0] = Ctx.ShredId;
    break;

  case Opcode::Spawn: {
    // Non-blocking: the child lands in the work queue at the barrier, in
    // issue-time order with every other spawn of the round.
    PendingOp Op;
    Op.K = PendingOp::Kind::Spawn;
    Op.Value = static_cast<uint32_t>(ScalarVal(DI.Src0));
    Op.SpawnKernel = Ctx.KernelId;
    Op.SpawnSurfaces = Ctx.Surfaces;
    Defer(std::move(Op), NextPc);
    break;
  }

  case Opcode::Xmit: {
    // Non-blocking: delivery happens at the barrier. A target blocked in
    // `wait` observes it there; a running target sees the register once
    // it next synchronizes (programs pair xmit with wait, as the paper's
    // inter-shred protocol does).
    PendingOp Op;
    Op.K = PendingOp::Kind::Xmit;
    Op.Target = static_cast<uint32_t>(ScalarVal(DI.Src0));
    Op.Value = static_cast<uint32_t>(ScalarVal(DI.Src1));
    Op.Reg = I.Dst.Reg0;
    Defer(std::move(Op), NextPc);
    break;
  }

  case Opcode::Wait: {
    uint8_t Reg = I.Dst.Reg0;
    if (Ctx.RegReady[Reg]) {
      // Fast path: the value arrived at an earlier barrier (or at
      // dispatch); RegReady is EU-local during the advance phase.
      Ctx.RegReady[Reg] = false;
      break;
    }
    PendingOp Op;
    Op.K = PendingOp::Kind::Wait;
    Op.Reg = Reg;
    Defer(std::move(Op), NextPc);
    Ctx.St = Context::State::Blocked;
    return;
  }

  case Opcode::Cmp: {
    if (I.Ty == ElemType::F64)
      return RaiseException(ExceptionKind::UnsupportedType);
    for (unsigned L = 0; L < I.Width; ++L) {
      if (!LaneEnabled(L))
        continue;
      bool R = false;
      if (I.Ty == ElemType::F32) {
        float A = ReadF32Lane(DI.Src0, L), B = ReadF32Lane(DI.Src1, L);
        switch (I.Cmp) {
        case CmpOp::Eq: R = A == B; break;
        case CmpOp::Ne: R = A != B; break;
        case CmpOp::Lt: R = A < B; break;
        case CmpOp::Le: R = A <= B; break;
        case CmpOp::Gt: R = A > B; break;
        case CmpOp::Ge: R = A >= B; break;
        }
      } else {
        int64_t A = ReadIntLane(DI.Src0, L), B = ReadIntLane(DI.Src1, L);
        switch (I.Cmp) {
        case CmpOp::Eq: R = A == B; break;
        case CmpOp::Ne: R = A != B; break;
        case CmpOp::Lt: R = A < B; break;
        case CmpOp::Le: R = A <= B; break;
        case CmpOp::Gt: R = A > B; break;
        case CmpOp::Ge: R = A >= B; break;
        }
      }
      Ctx.writePredLane(I.Dst.Reg0, L, R);
    }
    break;
  }

  case Opcode::Sel: {
    if (I.Ty == ElemType::F64)
      return RaiseException(ExceptionKind::UnsupportedType);
    for (unsigned L = 0; L < I.Width; ++L) {
      bool Bit = (Ctx.Preds[I.PredReg] >> L) & 1;
      if (I.PredNegate)
        Bit = !Bit;
      const isa::DecodedOperand &Src = Bit ? DI.Src0 : DI.Src1;
      if (I.Ty == ElemType::F32)
        WriteF32Lane(DI.Dst, L, ReadF32Lane(Src, L));
      else
        WriteIntLane(DI.Dst, L, ReadIntLane(Src, L));
    }
    break;
  }

  case Opcode::Cvt: {
    if (I.Ty == ElemType::F64 || I.SrcTy == ElemType::F64)
      return RaiseException(ExceptionKind::UnsupportedType);
    for (unsigned L = 0; L < I.Width; ++L) {
      if (!LaneEnabled(L))
        continue;
      // Read in source type (DI.Src0 was decoded with SrcTy's stride).
      double V;
      if (I.SrcTy == ElemType::F32) {
        V = ReadF32Lane(DI.Src0, L);
      } else {
        V = static_cast<double>(signExtend(ReadIntLane(DI.Src0, L), I.SrcTy));
      }
      // Write in destination type (saturating for narrow integers, as
      // media ISAs do).
      if (I.Ty == ElemType::F32) {
        WriteF32Lane(DI.Dst, L, static_cast<float>(V));
      } else {
        double Lo, Hi;
        switch (I.Ty) {
        case ElemType::I8: Lo = -128; Hi = 127; break;
        case ElemType::I16: Lo = -32768; Hi = 32767; break;
        default: Lo = -2147483648.0; Hi = 2147483647.0; break;
        }
        double Clamped = std::min(std::max(std::trunc(V), Lo), Hi);
        WriteIntLane(DI.Dst, L, static_cast<int64_t>(Clamped));
      }
    }
    break;
  }

  case Opcode::Ld:
  case Opcode::St:
  case Opcode::LdBlk:
  case Opcode::StBlk: {
    if (!Ctx.Surfaces || I.Src0.Imm < 0 ||
        static_cast<size_t>(I.Src0.Imm) >= Ctx.Surfaces->size())
      return RaiseException(ExceptionKind::InvalidSurface);
    const SurfaceBinding &S = (*Ctx.Surfaces)[static_cast<size_t>(I.Src0.Imm)];
    bool Is2D = I.Op == Opcode::LdBlk || I.Op == Opcode::StBlk;

    // Bounds checks read only frozen context state, so they stay in the
    // advance phase; the timed + functional access is deferred.
    if (Is2D) {
      int64_t X = ScalarVal(DI.Src1), Y = ScalarVal(DI.Src2);
      if (X < 0 || Y < 0 || X + I.Width > S.Width ||
          Y >= static_cast<int64_t>(S.Height))
        return RaiseException(ExceptionKind::SurfaceBounds);
    } else {
      int64_t FirstElem = ScalarVal(DI.Src1) + ScalarVal(DI.Src2);
      if (FirstElem < 0 ||
          FirstElem + I.Width > static_cast<int64_t>(S.totalElements()))
        return RaiseException(ExceptionKind::SurfaceBounds);
    }

    PendingOp Op;
    Op.K = PendingOp::Kind::Memory;
    Op.Instr = I;
    Defer(std::move(Op), NextPc);
    Ctx.St = Context::State::Blocked;
    return;
  }

  case Opcode::Sample: {
    if (!Ctx.Surfaces || I.Src0.Imm < 0 ||
        static_cast<size_t>(I.Src0.Imm) >= Ctx.Surfaces->size())
      return RaiseException(ExceptionKind::InvalidSurface);
    const SurfaceBinding &S = (*Ctx.Surfaces)[static_cast<size_t>(I.Src0.Imm)];
    if (S.Width == 0 || S.Height == 0)
      return RaiseException(ExceptionKind::SurfaceBounds);

    PendingOp Op;
    Op.K = PendingOp::Kind::Sampler;
    Op.Instr = I;
    Defer(std::move(Op), NextPc);
    Ctx.St = Context::State::Blocked;
    return;
  }

  default: {
    // ALU operations.
    if (I.Ty == ElemType::F64)
      return RaiseException(ExceptionKind::UnsupportedType);

    for (unsigned L = 0; L < I.Width; ++L) {
      if (!LaneEnabled(L))
        continue;
      if (I.Ty == ElemType::F32) {
        float A = ReadF32Lane(DI.Src0, L);
        float B = ReadF32Lane(DI.Src1, L);
        float R = 0;
        switch (I.Op) {
        case Opcode::Mov: R = A; break;
        case Opcode::Add: R = A + B; break;
        case Opcode::Sub: R = A - B; break;
        case Opcode::Mul: R = A * B; break;
        case Opcode::Mac: R = ReadF32Lane(DI.Dst, L) + A * B; break;
        case Opcode::Div: R = A / B; break; // IEEE inf/nan, no fault
        case Opcode::Min: R = std::min(A, B); break;
        case Opcode::Max: R = std::max(A, B); break;
        case Opcode::Avg: R = (A + B) * 0.5f; break;
        case Opcode::Abs: R = std::fabs(A); break;
        default:
          E.ShardError = formatString(
              "shred %u: %s is not defined for float operands", Ctx.ShredId,
              opcodeName(I.Op));
          return;
        }
        WriteF32Lane(DI.Dst, L, R);
      } else {
        int64_t A = ReadIntLane(DI.Src0, L);
        int64_t B = ReadIntLane(DI.Src1, L);
        int64_t R = 0;
        switch (I.Op) {
        case Opcode::Mov: R = A; break;
        case Opcode::Add: R = A + B; break;
        case Opcode::Sub: R = A - B; break;
        case Opcode::Mul: R = A * B; break;
        case Opcode::Mac: R = ReadIntLane(DI.Dst, L) + A * B; break;
        case Opcode::Div:
          if (B == 0)
            return RaiseException(ExceptionKind::DivideByZero);
          R = A / B;
          break;
        case Opcode::Min: R = std::min(A, B); break;
        case Opcode::Max: R = std::max(A, B); break;
        case Opcode::Avg: R = (A + B + 1) >> 1; break;
        case Opcode::Abs: R = A < 0 ? -A : A; break;
        case Opcode::Shl: R = A << (B & 31); break;
        case Opcode::Shr:
          R = static_cast<int64_t>(static_cast<uint32_t>(A) >> (B & 31));
          break;
        case Opcode::Asr: R = static_cast<int32_t>(A) >> (B & 31); break;
        case Opcode::And: R = A & B; break;
        case Opcode::Or: R = A | B; break;
        case Opcode::Xor: R = A ^ B; break;
        case Opcode::Not: R = ~A; break;
        default:
          exochiUnreachable("unhandled ALU opcode");
        }
        WriteIntLane(DI.Dst, L, R);
      }
    }
    break;
  }
  }

  Ctx.Pc = NextPc;
}

//===----------------------------------------------------------------------===//
// Advance phase
//===----------------------------------------------------------------------===//

void GmaDevice::advanceEu(Eu &E, TimeNs Horizon) {
  while (true) {
    TimeNs T = std::numeric_limits<TimeNs>::infinity();
    for (Context &C : E.Contexts)
      if (C.St == Context::State::Running)
        T = std::min(T, std::max(E.Time, C.StallUntil));
    if (T > Horizon) // also covers "no runnable context" (T = inf)
      return;

    E.Time = T;
    Context *Ctx = pickReadyContext(E);
    assert(Ctx && "EU advanced to a time with no ready context");

    if (Hook_) { // hooks force the serial path (effectiveSimThreads == 1)
      StepAction A = Hook_(Ctx->ShredId, Ctx->KernelId, Ctx->Pc);
      if (A == StepAction::Pause) {
        PauseRequested = true;
        return;
      }
    }

    issueInstruction(E, *Ctx);
    if (!E.ShardError.empty())
      return;
  }
}

//===----------------------------------------------------------------------===//
// Resolve phase
//===----------------------------------------------------------------------===//

Error GmaDevice::resolveLoadStore(Eu &E, Context &Ctx, const PendingOp &Op) {
  const Instruction &I = Op.Instr;
  const SurfaceBinding &S = (*Ctx.Surfaces)[static_cast<size_t>(I.Src0.Imm)];
  unsigned Esz = elemTypeSize(I.Ty);
  bool IsWrite = I.Op == Opcode::St || I.Op == Opcode::StBlk;
  bool Is2D = I.Op == Opcode::LdBlk || I.Op == Opcode::StBlk;

  auto LaneEnabled = [&](unsigned Lane) {
    if (I.PredReg == NoPred)
      return true;
    bool Bit = (Ctx.Preds[I.PredReg] >> Lane) & 1;
    return I.PredNegate ? !Bit : Bit;
  };
  auto ReadIntLane = [&](const Operand &O, unsigned Lane) -> int64_t {
    if (O.Kind == OperandKind::Imm)
      return O.Imm;
    return static_cast<int32_t>(Ctx.Regs[laneReg(O, Lane, I.Ty)]);
  };
  auto WriteIntLane = [&](const Operand &O, unsigned Lane, int64_t V) {
    Ctx.Regs[laneReg(O, Lane, I.Ty)] =
        static_cast<uint32_t>(signExtend(V, I.Ty));
  };
  auto ScalarVal = [&](const Operand &O) -> int64_t {
    if (O.Kind == OperandKind::Imm)
      return O.Imm;
    return static_cast<int32_t>(Ctx.Regs[O.Reg0]);
  };

  // First element index accessed by lane 0 (bounds were validated at
  // issue; the context's registers are frozen while it is blocked, so
  // this recomputation sees the same values).
  int64_t FirstElem;
  if (Is2D) {
    int64_t X = ScalarVal(I.Src1), Y = ScalarVal(I.Src2);
    FirstElem = Y * static_cast<int64_t>(S.Width) + X;
  } else {
    FirstElem = ScalarVal(I.Src1) + ScalarVal(I.Src2);
  }

  mem::VirtAddr Va = S.Base + static_cast<uint64_t>(FirstElem) * Esz;
  uint64_t Span = static_cast<uint64_t>(I.Width) * Esz;

  auto Acc = accessMemoryAt(Op.IssueNs, Ctx, Va, Span, IsWrite, S.MemType);
  if (!Acc)
    return Acc.takeError();

  // Functional data movement over the returned physical segments.
  std::vector<uint8_t> Buf(Span);
  auto ReadSegs = [&] {
    uint64_t Ofs = 0;
    for (auto &[Pa, N] : Acc->Segments) {
      PM.read(Pa, Buf.data() + Ofs, N);
      Ofs += N;
    }
  };
  auto WriteSegs = [&] {
    uint64_t Ofs = 0;
    for (auto &[Pa, N] : Acc->Segments) {
      PM.write(Pa, Buf.data() + Ofs, N);
      Ofs += N;
    }
  };

  if (IsWrite) {
    bool AnyMasked = false;
    for (unsigned L = 0; L < I.Width; ++L)
      if (!LaneEnabled(L))
        AnyMasked = true;
    if (AnyMasked)
      ReadSegs(); // read-modify-write under predication
    for (unsigned L = 0; L < I.Width; ++L) {
      if (!LaneEnabled(L))
        continue;
      if (I.Ty == ElemType::F64) {
        uint64_t Wide =
            static_cast<uint64_t>(Ctx.Regs[laneReg(I.Dst, L, I.Ty)]) |
            (static_cast<uint64_t>(Ctx.Regs[laneReg(I.Dst, L, I.Ty) + 1])
             << 32);
        std::memcpy(Buf.data() + L * Esz, &Wide, 8);
      } else {
        // Store the low Esz bytes (two's complement truncation).
        uint32_t U = static_cast<uint32_t>(ReadIntLane(I.Dst, L));
        std::memcpy(Buf.data() + L * Esz, &U, Esz);
      }
    }
    WriteSegs();
  } else {
    ReadSegs();
    for (unsigned L = 0; L < I.Width; ++L) {
      if (!LaneEnabled(L))
        continue;
      if (I.Ty == ElemType::F64) {
        uint64_t Wide = 0;
        std::memcpy(&Wide, Buf.data() + L * Esz, 8);
        Ctx.Regs[laneReg(I.Dst, L, I.Ty)] = static_cast<uint32_t>(Wide);
        Ctx.Regs[laneReg(I.Dst, L, I.Ty) + 1] =
            static_cast<uint32_t>(Wide >> 32);
      } else {
        int64_t V = 0;
        if (I.Ty == ElemType::I8) {
          int8_t B;
          std::memcpy(&B, Buf.data() + L * Esz, 1);
          V = B;
        } else if (I.Ty == ElemType::I16) {
          int16_t W;
          std::memcpy(&W, Buf.data() + L * Esz, 2);
          V = W;
        } else {
          int32_t D;
          std::memcpy(&D, Buf.data() + L * Esz, 4);
          V = D;
        }
        WriteIntLane(I.Dst, L, V);
      }
    }
  }

  Ctx.StallUntil = Acc->Done;
  Stats.FinishNs = std::max(Stats.FinishNs, Ctx.StallUntil);
  Ctx.Pc = Op.NextPc;
  Ctx.St = Context::State::Running;
  (void)E;
  return Error::success();
}

Error GmaDevice::resolveSample(Eu &E, Context &Ctx, const PendingOp &Op) {
  const Instruction &I = Op.Instr;
  const SurfaceBinding &S = (*Ctx.Surfaces)[static_cast<size_t>(I.Src0.Imm)];
  ++Stats.SamplerOps;

  auto ReadF32Lane0 = [&](const Operand &O) -> float {
    uint32_t Bits = O.Kind == OperandKind::Imm
                        ? static_cast<uint32_t>(O.Imm)
                        : Ctx.Regs[laneReg(O, 0, I.Ty)];
    float F;
    std::memcpy(&F, &Bits, 4);
    return F;
  };

  float U = ReadF32Lane0(I.Src1), V = ReadF32Lane0(I.Src2);
  // Clamp-to-edge addressing over a packed RGBA8 surface (one I32
  // element per pixel).
  auto Clamp = [](int X, int Hi) { return std::min(std::max(X, 0), Hi); };
  int W = static_cast<int>(S.Width), H = static_cast<int>(S.Height);
  float Uc = std::min(std::max(U, 0.0f), static_cast<float>(W - 1));
  float Vc = std::min(std::max(V, 0.0f), static_cast<float>(H - 1));
  int X0 = static_cast<int>(Uc), Y0 = static_cast<int>(Vc);
  int X1 = Clamp(X0 + 1, W - 1), Y1 = Clamp(Y0 + 1, H - 1);
  float Fx = Uc - static_cast<float>(X0), Fy = Vc - static_cast<float>(Y0);

  // Timed fetch of the 2x2 texel block (two row segments).
  uint32_t Texels[4] = {};
  TimeNs Done = Op.IssueNs;
  for (int Row = 0; Row < 2; ++Row) {
    int Y = Row == 0 ? Y0 : Y1;
    mem::VirtAddr Va =
        S.Base + (static_cast<uint64_t>(Y) * S.Width + X0) * 4;
    uint64_t Span = X1 > X0 ? 8 : 4;
    auto Acc =
        accessMemoryAt(Op.IssueNs, Ctx, Va, Span, /*IsWrite=*/false,
                       S.MemType);
    if (!Acc)
      return Acc.takeError();
    Done = std::max(Done, Acc->Done);
    uint8_t Tmp[8] = {};
    uint64_t Ofs = 0;
    for (auto &[Pa, N] : Acc->Segments) {
      PM.read(Pa, Tmp + Ofs, N);
      Ofs += N;
    }
    std::memcpy(&Texels[Row * 2 + 0], Tmp, 4);
    std::memcpy(&Texels[Row * 2 + 1], Span == 8 ? Tmp + 4 : Tmp, 4);
  }

  for (unsigned Ch = 0; Ch < 4; ++Ch) {
    auto Channel = [&](unsigned T) {
      return static_cast<float>((Texels[T] >> (8 * Ch)) & 0xff);
    };
    float Top = Channel(0) * (1 - Fx) + Channel(1) * Fx;
    float Bot = Channel(2) * (1 - Fx) + Channel(3) * Fx;
    float Out = Top * (1 - Fy) + Bot * Fy;
    uint32_t Bits;
    std::memcpy(&Bits, &Out, 4);
    Ctx.Regs[I.Dst.Reg0 + Ch] = Bits;
  }

  // The sampler is shared fixed-function hardware: requests serialize
  // at its throughput before the pipeline latency.
  TimeNs SampleSlot = std::max(Done, SamplerFreeAt);
  SamplerFreeAt = SampleSlot + 1.0 / Config.SamplerThroughputPerNs;
  Ctx.StallUntil = SampleSlot + Config.SamplerLatencyNs;
  Stats.FinishNs = std::max(Stats.FinishNs, Ctx.StallUntil);
  Ctx.Pc = Op.NextPc;
  Ctx.St = Context::State::Running;
  (void)E;
  return Error::success();
}

//===----------------------------------------------------------------------===//
// FaultLab degradation ladder (serial phases only)
//===----------------------------------------------------------------------===//

Error GmaDevice::hostRedispatch(ShredDescriptor Desc, uint32_t ShredId,
                                TimeNs Now) {
  const KernelImage *K = kernel(Desc.KernelId);
  if (!K)
    return Error::make(formatString(
        "shred %u: orphaned with unregistered kernel %u", ShredId,
        Desc.KernelId));
  if (!Proxy)
    return Error::make(formatString(
        "shred %u: orphaned with no proxy handler installed", ShredId));

  OrphanShred O;
  O.ShredId = ShredId;
  O.KernelId = Desc.KernelId;
  O.KernelName = K->Name;
  O.Code = &K->Code;
  O.Params = std::move(Desc.Params);
  O.Surfaces = std::move(Desc.Surfaces);
  O.RecordVa = Desc.RecordVa;

  ++Stats.ProxyCalls;
  auto Latency = Proxy->onShredOrphaned(O);
  if (!Latency)
    return Error::make(formatString(
        "shred %u: EU re-dispatch exhausted and IA32 host lane failed: %s",
        ShredId, Latency.message().c_str()));
  ++Stats.HostRedispatches;
  ++Stats.ShredsExecuted;
  Stats.ProxyStallNs += *Latency;
  Stats.FinishNs = std::max(Stats.FinishNs, Now + *Latency);
  return Error::success();
}

Error GmaDevice::redispatchShred(Eu &E, Context &Ctx) {
  ShredDescriptor Desc = Ctx.Desc;
  Desc.FixedShredId = Ctx.ShredId;
  Desc.Redispatches = static_cast<uint8_t>(Ctx.Desc.Redispatches + 1);
  Ctx.St = Context::State::Idle;
  // Once the retry budget is spent (or no EU survives to retry on), the
  // shred falls through to the last rung: functional execution on the
  // IA32 core through the proxy's host lane.
  if (Desc.Redispatches > Config.MaxShredRedispatch || !anyOnlineEu())
    return hostRedispatch(std::move(Desc), Ctx.ShredId, E.Time);
  ++Stats.ShredsRedispatched;
  Queue.push_back(std::move(Desc));
  return Error::success();
}

Error GmaDevice::offlineEu(Eu &E) {
  E.Offline = true;
  ++Stats.EusOfflined;
  Stats.OfflinedEus.push_back(E.Index);
  for (Context &C : E.Contexts)
    if (C.St != Context::State::Idle)
      if (Error Err = redispatchShred(E, C))
        return Err;
  return Error::success();
}

Error GmaDevice::resolveOne(const PendingOp &Op) {
  Eu &E = *Eus[Op.EuIdx];
  Context &Ctx = E.Contexts[Op.Slot];

  // A hard-failed EU drops its already-buffered ops — in-flight signals
  // from wedged hardware are simply lost. Its resident shreds were
  // re-dispatched when the EU went offline, so nothing dangles.
  if (E.Offline)
    return Error::success();

  // EuHardFail probe: a blocking shared-resource interaction is where a
  // wedged EU manifests. Keyed by the cluster-wide EU index (device ×
  // NumEus + EU) so a given EU fails at the same (deterministic)
  // occurrence for every SimThreads value, and distinct devices in a
  // cluster draw from distinct fault sites. Device 0 keys are unchanged
  // from the single-device scheme.
  if (injectionArmed() &&
      (Op.K == PendingOp::Kind::Memory || Op.K == PendingOp::Kind::Sampler ||
       Op.K == PendingOp::Kind::Exception) &&
      Injector->shouldInject(fault::FaultKind::EuHardFail,
                             DeviceIndex_ * Config.NumEus + E.Index)) {
    ++Stats.FaultsInjected;
    return offlineEu(E);
  }

  switch (Op.K) {
  case PendingOp::Kind::Memory: {
    Error Err = resolveLoadStore(E, Ctx, Op);
    // Under injection, a failed access is survivable: restart the shred
    // from its descriptor (functional writes only happen after the whole
    // access translates, so no partial mutation escaped).
    if (Err && injectionArmed())
      return redispatchShred(E, Ctx);
    return Err;
  }

  case PendingOp::Kind::Sampler: {
    Error Err = resolveSample(E, Ctx, Op);
    if (Err && injectionArmed())
      return redispatchShred(E, Ctx);
    return Err;
  }

  case PendingOp::Kind::Exception: {
    if (!Proxy)
      return Error::make(formatString(
          "shred %u: %s exception with no proxy handler", Ctx.ShredId,
          exceptionKindName(Op.Exc)));
    ExceptionInfo Info;
    Info.Kind = Op.Exc;
    Info.ShredId = Ctx.ShredId;
    Info.KernelId = Ctx.KernelId;
    Info.Pc = Ctx.Pc;
    Info.Instr = Op.Instr;
    ++Stats.ProxyCalls;
    auto Latency = Proxy->onException(Info, Ctx);
    if (!Latency) {
      // Under injection a CEH failure (e.g. exhausted handler timeouts)
      // degrades to a shred restart instead of killing the run.
      if (injectionArmed())
        return redispatchShred(E, Ctx);
      return Error::make(formatString(
          "shred %u pc %u: unhandled %s exception: %s", Ctx.ShredId, Ctx.Pc,
          exceptionKindName(Op.Exc), Latency.message().c_str()));
    }
    ++Stats.ExceptionsHandled;
    Ctx.StallUntil = Op.IssueNs + *Latency;
    Stats.FinishNs = std::max(Stats.FinishNs, Ctx.StallUntil);
    Ctx.Pc = Op.NextPc;
    Ctx.St = Context::State::Running;
    return Error::success();
  }

  case PendingOp::Kind::Xmit: {
    unsigned Deliveries = 1;
    if (injectionArmed()) {
      // MISP signal faults, keyed by (target shred, register) so the same
      // logical signal is dropped/duplicated at every SimThreads value.
      uint64_t SigKey = (static_cast<uint64_t>(Op.Target) << 8) | Op.Reg;
      if (Injector->shouldInject(fault::FaultKind::MailboxDrop, SigKey)) {
        ++Stats.FaultsInjected;
        ++Stats.MailboxDropped;
        return Error::success(); // signal lost; the waiter's timeout names it
      }
      if (Injector->shouldInject(fault::FaultKind::MailboxDup, SigKey)) {
        ++Stats.FaultsInjected;
        ++Stats.MailboxDuplicated;
        Deliveries = 2; // register writes are idempotent; must be benign
      }
    }
    for (unsigned D = 0; D < Deliveries; ++D) {
      if (Context *Remote = findResident(Op.Target)) {
        Remote->Regs[Op.Reg] = Op.Value;
        Remote->RegReady[Op.Reg] = true;
        if (Remote->St == Context::State::Waiting &&
            Remote->WaitReg == Op.Reg) {
          Remote->St = Context::State::Running;
          Remote->StallUntil = std::max(Remote->StallUntil, Op.IssueNs);
          Remote->RegReady[Op.Reg] = false; // the pending wait consumes it
        }
      } else {
        auto &Box = Mailbox[Op.Target];
        bool Replaced = false;
        for (auto &P : Box)
          if (P.first == Op.Reg) {
            P.second = Op.Value;
            Replaced = true;
            break;
          }
        if (!Replaced)
          Box.emplace_back(Op.Reg, Op.Value);
      }
    }
    return Error::success();
  }

  case PendingOp::Kind::Wait: {
    if (Ctx.RegReady[Op.Reg]) {
      // An xmit resolved earlier (in issue-time order) this round.
      Ctx.RegReady[Op.Reg] = false;
      Ctx.StallUntil = std::max(Ctx.StallUntil, Op.IssueNs);
      Ctx.St = Context::State::Running;
    } else {
      Ctx.WaitReg = Op.Reg;
      Ctx.WaitSinceNs = Op.IssueNs;
      Ctx.St = Context::State::Waiting;
    }
    Ctx.Pc = Op.NextPc; // resume after the wait once signalled
    return Error::success();
  }

  case PendingOp::Kind::Spawn: {
    ShredDescriptor Child;
    Child.KernelId = Op.SpawnKernel;
    Child.Surfaces = Op.SpawnSurfaces;
    Child.Params.push_back(static_cast<int32_t>(Op.Value));
    Queue.push_back(std::move(Child));
    return Error::success();
  }

  case PendingOp::Kind::Retire: {
    Ctx.St = Context::State::Idle;
    ++Stats.ShredsExecuted;
    if (Tracer) {
      ShredSpan Span;
      Span.Device = DeviceIndex_;
      Span.Eu = E.Index;
      Span.Slot = Ctx.Slot;
      Span.ShredId = Ctx.ShredId;
      Span.Kernel = Ctx.Kern ? Ctx.Kern->Name : "";
      Span.StartNs = Ctx.LoadedAtNs;
      Span.EndNs = Op.EndNs;
      Tracer->record(std::move(Span));
    }
    return Error::success();
  }
  }
  exochiUnreachable("bad PendingOp kind");
}

Error GmaDevice::resolvePending() {
  size_t Total = 0;
  for (auto &E : Eus)
    Total += E->Pending.size();
  if (Total == 0)
    return Error::success();

  std::vector<PendingOp> Ops;
  Ops.reserve(Total);
  for (auto &E : Eus) {
    std::move(E->Pending.begin(), E->Pending.end(), std::back_inserter(Ops));
    E->Pending.clear();
  }

  // The arbitration rule: earlier issue first; EU index, then per-EU
  // issue sequence break ties. This depends only on the simulated
  // schedule, which is identical for every worker count.
  std::sort(Ops.begin(), Ops.end(),
            [](const PendingOp &A, const PendingOp &B) {
              if (A.IssueNs != B.IssueNs)
                return A.IssueNs < B.IssueNs;
              if (A.EuIdx != B.EuIdx)
                return A.EuIdx < B.EuIdx;
              return A.Seq < B.Seq;
            });

  for (const PendingOp &Op : Ops)
    if (Error Err = resolveOne(Op))
      return Err;
  return Error::success();
}

void GmaDevice::preemptAll(TimeNs Now) {
  for (auto &E : Eus) {
    assert(E->Pending.empty() && "preemption with buffered ops in flight");
    for (Context &C : E->Contexts) {
      if (C.St == Context::State::Idle)
        continue;
      ++Stats.ShredsPreempted;
      if (Tracer) {
        ShredSpan Span;
        Span.Device = DeviceIndex_;
        Span.Eu = E->Index;
        Span.Slot = C.Slot;
        Span.ShredId = C.ShredId;
        Span.Kernel = C.Kern ? C.Kern->Name : "";
        Span.StartNs = C.LoadedAtNs;
        Span.EndNs = Now;
        Tracer->record(std::move(Span));
      }
      C.St = Context::State::Idle;
    }
  }
  Stats.ShredsPreempted += Queue.size();
  Queue.clear();
  Stats.FinishNs = std::max(Stats.FinishNs, Now);
}

void GmaDevice::mergeStatShards() {
  for (auto &E : Eus) {
    Stats.Instructions += E->ShardInstructions;
    Stats.IssueCycles += E->ShardIssueCycles;
    Stats.FinishNs = std::max(Stats.FinishNs, E->ShardFinishNs);
    E->ShardInstructions = 0;
    E->ShardIssueCycles = 0;
    E->ShardFinishNs = 0;
  }
}

//===----------------------------------------------------------------------===//
// Run loop
//===----------------------------------------------------------------------===//

Expected<RunExit> GmaDevice::run(TimeNs StartNs) {
  Stats.StartNs = StartNs;
  Stats.FinishNs = StartNs;
  for (auto &E : Eus)
    E->Time = StartNs;
  PausedFlag = false;
  return resume();
}

Expected<RunExit> GmaDevice::resume() {
  PausedFlag = false;

  unsigned Threads = effectiveSimThreads();
  if (Threads <= 1)
    Pool.reset();
  else if (!Pool || Pool->workers() != Threads - 1)
    Pool = std::make_unique<support::ThreadPool>(Threads - 1);

  // Normally a no-op: every round resolves its own ops, and a pause
  // resolves before returning. Drains stale ops after an error exit.
  if (Error Err = resolvePending()) {
    mergeStatShards();
    return Err;
  }

  while (true) {
    // Phase 1 (serial): dispatch queued shreds into idle contexts.
    for (auto &E : Eus) {
      while (true) {
        auto Refilled = refillContext(*E);
        if (!Refilled) {
          mergeStatShards();
          return Refilled.takeError();
        }
        if (!*Refilled)
          break;
      }
    }

    // Next-event horizon and termination detection.
    TimeNs NextT = std::numeric_limits<TimeNs>::infinity();
    bool AnyResident = false, AnyWaiting = false;
    for (auto &E : Eus) {
      for (Context &C : E->Contexts) {
        if (C.St == Context::State::Idle)
          continue;
        AnyResident = true;
        if (C.St == Context::State::Waiting) {
          AnyWaiting = true;
          continue;
        }
        NextT = std::min(NextT, std::max(E->Time, C.StallUntil));
      }
    }

    // ExoServe watchdog: the deadline budget is enforced here, at the
    // serial epoch boundary where no buffered op is in flight. The next
    // event time is part of the canonical schedule, so the decision is
    // identical for every SimThreads value. NextT == infinity (every
    // resident shred blocked in `wait`) also trips the deadline: an
    // overrunning deadlocked job becomes a bounded preemption instead of
    // an error. The all-EUs-failed host-drain fallback below is exempt
    // (anyOnlineEu() false): its functional completion is the last rung
    // of the degradation ladder, not device time.
    if (DeadlineNs > 0 && NextT > DeadlineNs &&
        (AnyResident || (!Queue.empty() && anyOnlineEu()))) {
      preemptAll(DeadlineNs);
      mergeStatShards();
      return RunExit::DeadlinePreempted;
    }

    // Per-`wait` timeout: a shred starved of its xmit signal (e.g. a
    // dropped MISP mailbox message) becomes a bounded, diagnosed error
    // instead of an eventual silent hang. Compared against the next
    // event time so the check is part of the deterministic schedule.
    if (Config.WaitTimeoutNs > 0 &&
        NextT != std::numeric_limits<TimeNs>::infinity()) {
      for (auto &E : Eus)
        for (Context &C : E->Contexts)
          if (C.St == Context::State::Waiting &&
              NextT - C.WaitSinceNs > Config.WaitTimeoutNs) {
            mergeStatShards();
            return Error::make(formatString(
                "shred %u: `wait vr%u` timed out after %.0f ns blocked "
                "(signal lost or sender failed)",
                C.ShredId, static_cast<unsigned>(C.WaitReg),
                NextT - C.WaitSinceNs));
          }
    }

    if (NextT == std::numeric_limits<TimeNs>::infinity()) {
      // Every EU hard-failed with work still queued: drain the queue
      // through the IA32 host lane (degradation ladder, last rung).
      if (!AnyResident && !Queue.empty() && !anyOnlineEu()) {
        while (!Queue.empty()) {
          ShredDescriptor Desc = std::move(Queue.front());
          Queue.pop_front();
          uint32_t Id =
              Desc.FixedShredId ? Desc.FixedShredId : NextShredId++;
          if (Error Err = hostRedispatch(std::move(Desc), Id, Stats.FinishNs)) {
            mergeStatShards();
            return Err;
          }
        }
      }
      mergeStatShards();
      if (!AnyResident && Queue.empty())
        return RunExit::QueueDrained;
      if (AnyWaiting) {
        // Name the stuck shreds: "deadlock" alone sends the user to the
        // debugger; the register list usually identifies the protocol bug.
        std::string Who;
        for (auto &E : Eus)
          for (Context &C : E->Contexts)
            if (C.St == Context::State::Waiting) {
              if (!Who.empty())
                Who += ", ";
              Who += formatString("shred %u on vr%u", C.ShredId,
                                  static_cast<unsigned>(C.WaitReg));
            }
        return Error::make(
            "deadlock: every resident shred is blocked in `wait` and the "
            "work queue cannot make progress (" +
            Who + ")");
      }
      // Resident contexts exist but none runnable and none waiting —
      // impossible by construction.
      exochiUnreachable("GMA run loop stuck with no runnable context");
    }

    // Phase 2 (parallel): advance every EU to the horizon. Workers touch
    // only their own EUs plus read-only kernel code and configuration.
    TimeNs Horizon = NextT + Config.SimHorizonNs;
    PauseRequested = false;
    if (Threads <= 1) {
      for (auto &E : Eus) {
        advanceEu(*E, Horizon);
        if (PauseRequested)
          break;
      }
    } else {
      support::ThreadPool &P = *Pool;
      unsigned NumEus = static_cast<unsigned>(Eus.size());
      P.run([this, Horizon, Threads, NumEus](unsigned W) {
        for (unsigned Idx = W; Idx < NumEus; Idx += Threads)
          advanceEu(*Eus[Idx], Horizon);
      });
    }

    // Advance-phase errors surface in EU-index order.
    for (auto &E : Eus) {
      if (!E->ShardError.empty()) {
        std::string Msg = std::move(E->ShardError);
        E->ShardError.clear();
        mergeStatShards();
        return Error::make(std::move(Msg));
      }
    }

    // Phase 3 (serial): resolve all buffered shared-resource ops.
    if (Error Err = resolvePending()) {
      mergeStatShards();
      return Err;
    }

    if (PauseRequested) {
      // The resolve above already applied everything issued before the
      // pause, so debuggers see a machine with no in-flight operations.
      PausedFlag = true;
      mergeStatShards();
      return RunExit::Paused;
    }
  }
}
