//===- gma/KernelTable.h - Device-global kernel registry -------------------===//
//
// Part of the EXOCHI reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The kernel table is device-global state: every GmaDevice in an
/// ExoCluster executes the same registered kernels, and the decoded form
/// (isa::DecodedKernel) is expensive enough to share rather than duplicate
/// per instance. GmaDevice keeps its per-instance core (EUs, TLB, cache,
/// stats, queue) and holds a shared_ptr to one of these; a single-device
/// platform simply owns a private table, so the split costs nothing when
/// N = 1.
///
/// The table is append-only and single-writer: registration happens on
/// the host thread before any device runs, and the simulated devices of a
/// cluster are advanced serially, so no locking is needed.
///
//===----------------------------------------------------------------------===//

#ifndef EXOCHI_GMA_KERNELTABLE_H
#define EXOCHI_GMA_KERNELTABLE_H

#include "isa/Decoded.h"

#include <deque>
#include <string>
#include <vector>

namespace exochi {
namespace gma {

/// A kernel registered with a device (or a cluster of them): decoded code
/// ready to dispatch.
struct KernelImage {
  std::vector<isa::Instruction> Code;
  std::string Name;
  /// Operand-resolved form, filled in at registration (shared across
  /// devices through the process-wide decode cache). Both the cycle
  /// interpreter and the XJIT fast lane execute from it.
  std::shared_ptr<const isa::DecodedKernel> Decoded;
};

/// Append-only registry of kernels, indexed by id - 1. A deque keeps
/// KernelImage references stable across registration (resident contexts
/// cache pointers into it) while get() stays O(1).
class KernelTable {
public:
  /// Registers \p Image (pre-decoding it once if needed) and returns its
  /// kernel id. Ids are 1-based; 0 is "no kernel".
  uint32_t add(KernelImage Image) {
    if (!Image.Decoded)
      Image.Decoded = isa::decodeKernel(Image.Code);
    Kernels.push_back(std::move(Image));
    return static_cast<uint32_t>(Kernels.size());
  }

  /// Looks up a registered kernel; nullptr when unknown.
  const KernelImage *get(uint32_t KernelId) const {
    if (KernelId == 0 || KernelId > Kernels.size())
      return nullptr;
    return &Kernels[KernelId - 1];
  }

  size_t size() const { return Kernels.size(); }

private:
  std::deque<KernelImage> Kernels;
};

} // namespace gma
} // namespace exochi

#endif // EXOCHI_GMA_KERNELTABLE_H
