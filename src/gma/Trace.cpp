//===- gma/Trace.cpp ---------------------------------------------------------------===//
//
// Part of the EXOCHI reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gma/Trace.h"

#include "support/Format.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace exochi;
using namespace exochi::gma;

namespace {

/// Escapes \p S for embedding in a JSON string literal (kernel names come
/// from user-controlled fat-binary metadata).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", static_cast<unsigned>(
                                           static_cast<unsigned char>(C)));
      else
        Out += C;
    }
  }
  return Out;
}

} // namespace

std::string TraceRecorder::toChromeJson() const {
  // Rows are flattened as Eu * stride + Slot. The stride must come from
  // the device geometry: a fixed constant collides rows as soon as a
  // device is configured with more contexts per EU than the constant.
  unsigned Stride = ThreadsPerEu_;
  if (Stride == 0) {
    for (const ShredSpan &S : Spans)
      Stride = std::max(Stride, S.Slot + 1);
    Stride = std::max(Stride, 1u);
  }

  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;

  // Name the processes (one per cluster device) and the rows.
  std::map<unsigned, bool> Devices;
  std::map<std::tuple<unsigned, unsigned, unsigned>, bool> Rows;
  for (const ShredSpan &S : Spans) {
    Devices[S.Device] = true;
    Rows[{S.Device, S.Eu, S.Slot}] = true;
  }
  for (const auto &[Dev, Unused] : Devices) {
    (void)Unused;
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                        "\"args\":{\"name\":\"GMA device %u\"}}",
                        Dev, Dev);
  }
  for (const auto &[Row, Unused] : Rows) {
    (void)Unused;
    auto [Dev, EuIdx, Slot] = Row;
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                        "\"tid\":%u,\"args\":{\"name\":\"EU%u ctx%u\"}}",
                        Dev, EuIdx * Stride + Slot, EuIdx, Slot);
  }

  for (const ShredSpan &S : Spans) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":%u,\"tid\":%u,\"args\":{\"shred\":%u}}",
        jsonEscape(S.Kernel).c_str(), S.StartNs / 1000.0,
        (S.EndNs - S.StartNs) / 1000.0, S.Device, S.Eu * Stride + S.Slot,
        S.ShredId);
  }
  Out += "\n]}\n";
  return Out;
}

double TraceRecorder::occupancy() const {
  if (Spans.empty())
    return 0.0;
  mem::TimeNs Lo = Spans.front().StartNs, Hi = Spans.front().EndNs;
  unsigned NumDevices = 1;
  std::map<std::tuple<unsigned, unsigned, unsigned>, mem::TimeNs> Busy;
  for (const ShredSpan &S : Spans) {
    Lo = std::min(Lo, S.StartNs);
    Hi = std::max(Hi, S.EndNs);
    NumDevices = std::max(NumDevices, S.Device + 1);
    Busy[{S.Device, S.Eu, S.Slot}] += S.EndNs - S.StartNs;
  }
  if (Hi <= Lo || Busy.empty())
    return 0.0;
  // The divisor is every hardware context the fleet has, not just the
  // ones that happened to run a shred: contexts that sat idle are lost
  // capacity and must drag the ratio down. (The per-device geometry is
  // scaled by the number of devices the spans actually mention.)
  double Contexts = static_cast<double>(NumEus_) * ThreadsPerEu_ * NumDevices;
  if (Contexts == 0)
    Contexts = static_cast<double>(Busy.size());
  double Total = 0;
  for (const auto &[Row, B] : Busy) {
    (void)Row;
    Total += B;
  }
  return Total / (Contexts * (Hi - Lo));
}
