//===- gma/Trace.cpp ---------------------------------------------------------------===//
//
// Part of the EXOCHI reproduction project.
//
//===----------------------------------------------------------------------===//

#include "gma/Trace.h"

#include "support/Format.h"

#include <algorithm>
#include <map>

using namespace exochi;
using namespace exochi::gma;

std::string TraceRecorder::toChromeJson() const {
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;

  // Name the rows.
  std::map<std::pair<unsigned, unsigned>, bool> Rows;
  for (const ShredSpan &S : Spans)
    Rows[{S.Eu, S.Slot}] = true;
  for (const auto &[Row, Unused] : Rows) {
    (void)Unused;
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                        "\"tid\":%u,\"args\":{\"name\":\"EU%u ctx%u\"}}",
                        Row.first * 16 + Row.second, Row.first, Row.second);
  }

  for (const ShredSpan &S : Spans) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += formatString(
        "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":0,\"tid\":%u,\"args\":{\"shred\":%u}}",
        S.Kernel.c_str(), S.StartNs / 1000.0,
        (S.EndNs - S.StartNs) / 1000.0, S.Eu * 16 + S.Slot, S.ShredId);
  }
  Out += "\n]}\n";
  return Out;
}

double TraceRecorder::occupancy() const {
  if (Spans.empty())
    return 0.0;
  mem::TimeNs Lo = Spans.front().StartNs, Hi = Spans.front().EndNs;
  std::map<std::pair<unsigned, unsigned>, mem::TimeNs> Busy;
  for (const ShredSpan &S : Spans) {
    Lo = std::min(Lo, S.StartNs);
    Hi = std::max(Hi, S.EndNs);
    Busy[{S.Eu, S.Slot}] += S.EndNs - S.StartNs;
  }
  if (Hi <= Lo || Busy.empty())
    return 0.0;
  double Total = 0;
  for (const auto &[Row, B] : Busy) {
    (void)Row;
    Total += B;
  }
  return Total / (static_cast<double>(Busy.size()) * (Hi - Lo));
}
