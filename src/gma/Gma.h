//===- gma/Gma.h - GMA X3000-class device model: common types --------------===//
//
// Part of the EXOCHI reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Common types of the simulated GMA-class accelerator (paper Section 3.4
/// and Figure 3): surface bindings, shred descriptors, device
/// configuration, run statistics, and the proxy-signal interface through
/// which the device raises ATR translation misses and CEH exceptions to
/// the OS-managed IA32 sequencer.
///
//===----------------------------------------------------------------------===//

#ifndef EXOCHI_GMA_GMA_H
#define EXOCHI_GMA_GMA_H

#include "isa/Isa.h"
#include "mem/MemoryBus.h"
#include "mem/PageTable.h"
#include "mem/PhysicalMemory.h"
#include "mem/Tlb.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace exochi {
namespace gma {

using mem::TimeNs;

/// Which execution backend ran (or should run) a dispatch. The cycle
/// backend is the cycle-level GmaDevice interpreter — the semantics
/// reference; the fast backend is the XJIT host-native functional lane
/// (src/xjit), selectable per run via chi::Feature::Backend. Surface
/// outputs are bit-identical between the two; timing/occupancy
/// statistics are backend-specific.
enum class BackendKind : uint8_t {
  Cycle, ///< cycle-level interpreter (the differential oracle)
  Fast,  ///< XJIT host-native functional lane
};

/// Returns "cycle" or "fast".
const char *backendName(BackendKind K);

/// Parses a backend name ("cycle" / "fast"); nullopt for anything else.
std::optional<BackendKind> parseBackendName(std::string_view Name);

/// How a surface may be accessed by shreds (paper Table 1: descriptors are
/// allocated with an input/output mode).
enum class SurfaceMode : uint8_t {
  Input,
  Output,
  InputOutput,
};

/// A surface: the accelerator's 2-D view of a region of shared virtual
/// memory (paper Section 4.4). Configured by the CHI runtime from the
/// descriptors the programmer allocates with chi_alloc_desc.
struct SurfaceBinding {
  mem::VirtAddr Base = 0;
  uint32_t Width = 0;  ///< Elements per row.
  uint32_t Height = 1; ///< Rows.
  isa::ElemType Elem = isa::ElemType::I32;
  SurfaceMode Mode = SurfaceMode::InputOutput;
  mem::GpuMemType MemType = mem::GpuMemType::Cached;

  uint64_t totalElements() const {
    return static_cast<uint64_t>(Width) * Height;
  }
  uint64_t totalBytes() const {
    return totalElements() * isa::elemTypeSize(Elem);
  }
};

/// The surface table shared by every shred of one parallel dispatch.
using SurfaceTable = std::vector<SurfaceBinding>;

/// A shred continuation: what the emulation firmware translates into
/// hardware commands (paper Section 3.4: "a shred descriptor, which
/// includes shred continuation information like instruction and data
/// pointers to the shared memory").
struct ShredDescriptor {
  uint32_t KernelId = 0;
  /// Scalar parameters preloaded into vr0.. in order (private /
  /// firstprivate clause values).
  std::vector<int32_t> Params;
  /// Surfaces visible to the shred (shared clause variables).
  std::shared_ptr<const SurfaceTable> Surfaces;
  /// When nonzero, the authoritative copy of Params lives at this shared
  /// virtual address (Params.size() little-endian i32 words): the work
  /// queue's continuation records are in shared virtual memory as in the
  /// paper, and the firmware fetches them through ATR-translated reads at
  /// dispatch. Params then only conveys the record length.
  mem::VirtAddr RecordVa = 0;
  /// When nonzero, dispatch reuses this shred id instead of allocating a
  /// fresh one. Set by the FaultLab degradation ladder when a shred is
  /// re-queued after an EU failure, so xmit targets and traces keep
  /// addressing the same logical shred.
  uint32_t FixedShredId = 0;
  /// How many times this shred has been re-dispatched after a fault.
  /// Restart-from-descriptor assumes idempotent kernels (each attempt
  /// recomputes the same outputs); GmaConfig::MaxShredRedispatch bounds
  /// the retries before the IA32 host lane takes over.
  uint8_t Redispatches = 0;
};

/// Device geometry and first-order timing parameters. Defaults model the
/// GMA X3000: 8 EUs x 4 hardware threads at 667 MHz.
struct GmaConfig {
  unsigned NumEus = 8;
  unsigned ThreadsPerEu = 4;
  double ClockGhz = 0.667;
  unsigned TlbEntriesPerEu = 32;
  uint64_t CacheBytes = 128 * 1024;
  uint64_t CacheLineBytes = 64;
  unsigned CacheWays = 8;
  /// Shared-cache hit latency as seen by a shred (the cache pipeline is
  /// effectively hidden beyond a few cycles by switch-on-stall issue).
  TimeNs CacheHitNs = 6.0;
  TimeNs SamplerLatencyNs = 90.0; ///< Fixed-function sampler pipeline.
  /// Shared sampler throughput (samples per ns across the whole device):
  /// the exo-sequencers "share access to specialized, fixed function
  /// hardware" (paper Section 3.4), so sampler-heavy kernels serialize
  /// behind it.
  double SamplerThroughputPerNs = 0.667; // 1 sample per device cycle
  /// Firmware cost of translating a shred descriptor into hardware
  /// commands and loading a thread context (paper Section 3.4).
  TimeNs ShredDispatchNs = 60.0;

  /// Host worker threads used to simulate the device (0 = one per
  /// hardware core, capped at NumEus; 1 = serial in-line execution).
  /// Every setting produces bit-identical results: the epoch-based
  /// engine resolves all shared-resource interactions in a fixed order
  /// at simulation barriers (see DESIGN.md, "Parallel simulation").
  unsigned SimThreads = 0;
  /// Epoch length: each simulation round advances every EU to
  /// (earliest pending event + SimHorizonNs) before the shared-resource
  /// barrier. Part of the deterministic schedule, so changing it changes
  /// arbitration outcomes (identically for every SimThreads value).
  TimeNs SimHorizonNs = 400.0;

  /// A shred blocked in `wait` longer than this (simulated time) fails
  /// the run with a diagnosed timeout instead of deadlocking silently
  /// (FaultLab: a dropped MISP signal becomes a bounded, named error).
  /// 0 disables the timeout. The default is far above any legitimate
  /// wait in the modelled workloads.
  TimeNs WaitTimeoutNs = 1e9;
  /// Times a faulted shred may be re-queued onto surviving EUs before
  /// the last-resort IA32 host lane runs it (degradation ladder step 3).
  unsigned MaxShredRedispatch = 3;

  /// Cycle period in nanoseconds.
  TimeNs cycleNs() const { return 1.0 / ClockGhz; }

  unsigned totalContexts() const { return NumEus * ThreadsPerEu; }
};

/// Exception kinds a shred can raise (the CEH cases of Section 3.3).
enum class ExceptionKind : uint8_t {
  UnsupportedType,  ///< e.g. double-precision vector instruction.
  DivideByZero,     ///< integer division by zero.
  SurfaceBounds,    ///< access outside a bound surface.
  InvalidSurface,   ///< surface slot not bound.
};

/// Returns a human-readable name for \p K.
const char *exceptionKindName(ExceptionKind K);

/// Everything a CEH handler needs to emulate a faulting instruction.
struct ExceptionInfo {
  ExceptionKind Kind = ExceptionKind::UnsupportedType;
  uint32_t ShredId = 0;
  uint32_t KernelId = 0;
  uint32_t Pc = 0;
  isa::Instruction Instr;
};

/// Register-file view handed to CEH handlers so the IA32 proxy can read
/// faulting operands and write emulated results back into the
/// exo-sequencer (paper: "CEH ensures the result is updated in the
/// exo-sequencer before resuming execution").
class ShredRegView {
public:
  virtual ~ShredRegView();
  virtual uint32_t readReg(unsigned Reg) const = 0;
  virtual void writeReg(unsigned Reg, uint32_t Value) = 0;
  virtual bool readPredLane(unsigned PredReg, unsigned Lane) const = 0;
  virtual void writePredLane(unsigned PredReg, unsigned Lane, bool Set) = 0;
};

/// A shred the device can no longer run (its EU failed and either no EU
/// survives or the re-dispatch budget is spent): everything the IA32
/// host lane needs to execute it functionally instead.
struct OrphanShred {
  uint32_t ShredId = 0;
  uint32_t KernelId = 0;
  std::string KernelName;
  /// Decoded kernel code (owned by the device; valid for the call).
  const std::vector<isa::Instruction> *Code = nullptr;
  std::vector<int32_t> Params;
  std::shared_ptr<const SurfaceTable> Surfaces;
  mem::VirtAddr RecordVa = 0; ///< authoritative params, when nonzero
};

/// The MISP exoskeleton signalling interface: the device raises
/// user-level interrupts to the OS-managed sequencer through this, and
/// the exo layer (src/exo) implements proxy execution behind it.
class ProxySignalHandler {
public:
  virtual ~ProxySignalHandler();

  /// ATR: the exo-sequencer's TLB missed for the page containing \p Va.
  /// The proxy must service the fault and insert a GPU-format entry into
  /// \p Tlb. Returns the proxy latency in nanoseconds, or an error when
  /// the fault is unserviceable (the shred then terminates).
  virtual Expected<TimeNs> onTranslationMiss(mem::VirtAddr Va, bool IsWrite,
                                             mem::GpuMemType MemType,
                                             mem::Tlb &Tlb) = 0;

  /// CEH: instruction \p Info faulted. The proxy may emulate it through
  /// \p Regs. Returns the handling latency (the instruction is then
  /// skipped), or an error to terminate the shred.
  virtual Expected<TimeNs> onException(const ExceptionInfo &Info,
                                       ShredRegView &Regs) = 0;

  /// Last resort of the FaultLab degradation ladder: run orphan \p O on
  /// the IA32 core (the paper's Fig. 10 cooperative machinery as a
  /// failover lane). Returns the host execution latency, or an error when
  /// no host lane exists (the default) or the shred cannot run there.
  virtual Expected<TimeNs> onShredOrphaned(const OrphanShred &O);
};

/// Aggregate statistics of one device run.
struct GmaRunStats {
  /// Which backend executed the run (cycle interpreter or XJIT fast
  /// lane). Functional counters mean the same thing on both; timing
  /// fields are cycle-accurate only on the cycle backend (the fast lane
  /// reports a deterministic issue-cycle estimate).
  BackendKind Backend = BackendKind::Cycle;
  TimeNs StartNs = 0;
  TimeNs FinishNs = 0;
  uint64_t ShredsExecuted = 0;
  uint64_t Instructions = 0;
  uint64_t MemoryOps = 0;
  uint64_t BytesLoaded = 0;
  uint64_t BytesStored = 0;
  uint64_t TlbMisses = 0;
  uint64_t ProxyCalls = 0;
  uint64_t ExceptionsHandled = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t SamplerOps = 0;
  double IssueCycles = 0; ///< total EU issue cycles charged
  TimeNs ProxyStallNs = 0; ///< context-stall time due to ATR/CEH proxies

  // FaultLab resilience counters (all zero when injection is disarmed).
  uint64_t FaultsInjected = 0;     ///< injector decisions taken at device sites
  uint64_t EusOfflined = 0;        ///< EUs removed after a hard-fail
  uint64_t ShredsRedispatched = 0; ///< shreds re-queued onto surviving EUs
  uint64_t HostRedispatches = 0;   ///< orphans executed on the IA32 lane
  uint64_t MailboxDropped = 0;     ///< xmit signals lost by injection
  uint64_t MailboxDuplicated = 0;  ///< xmit signals delivered twice

  // ExoServe counters.
  /// Shreds cancelled (resident or still queued) when the run hit its
  /// deadline budget and exited with RunExit::DeadlinePreempted.
  uint64_t ShredsPreempted = 0;
  /// EU indices offlined by hard-fails this run, in offline order (a
  /// serial-phase event, so the order is part of the deterministic
  /// schedule). The ExoServe circuit breaker consumes this as its
  /// per-EU failure signal.
  std::vector<unsigned> OfflinedEus;

  /// Field-wise equality: the parallel-simulation determinism contract
  /// promises bit-identical stats for every GmaConfig::SimThreads value.
  bool operator==(const GmaRunStats &) const = default;

  TimeNs elapsedNs() const { return FinishNs - StartNs; }
};

/// One-line JSON rendering of \p S (machine-readable device stats for
/// tools; includes the active backend).
std::string runStatsJson(const GmaRunStats &S);

} // namespace gma
} // namespace exochi

#endif // EXOCHI_GMA_GMA_H
