//===- tests/fuzz_test.cpp - Robustness / failure-injection tests -------------===//
//
// Hostile-input tests: the decoder, fat-binary loader, and assembler must
// reject malformed input with diagnostics — never crash, hang, or accept
// garbage silently.
//
//===----------------------------------------------------------------------===//

#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"
#include "fatbin/FatBinary.h"
#include "isa/Encoding.h"
#include "net/Wire.h"
#include "support/Random.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

using namespace exochi;

//===----------------------------------------------------------------------===//
// Instruction decoder fuzz
//===----------------------------------------------------------------------===//

class DecoderFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DecoderFuzzTest, RandomBytesNeverCrash) {
  Rng R(GetParam() * 0x9e37 + 1);
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    unsigned N = static_cast<unsigned>(R.nextInRange(1, 8));
    std::vector<uint8_t> Bytes(N * isa::InstrBytes);
    for (auto &B : Bytes)
      B = R.nextByte();
    auto Prog = isa::decodeProgram(Bytes);
    // Either a decode error or structurally valid instructions.
    if (Prog) {
      for (const isa::Instruction &I : *Prog)
        EXPECT_EQ(isa::validate(I), "");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(DecoderFuzzTest, BitFlippedValidProgramsNeverCrash) {
  xasm::SymbolBindings Binds;
  Binds.bindSurface("A", 0);
  auto K = cantFail(xasm::assembleKernel("  mov.1.dw vr1 = 0\n"
                                         "loop:\n"
                                         "  add.8.dw [vr2..vr9] = [vr2..vr9], 1\n"
                                         "  cmp.lt.1.dw p1 = vr1, 3\n"
                                         "  br p1, loop\n"
                                         "  st.8.dw (A, vr1, 0) = [vr2..vr9]\n"
                                         "  halt\n",
                                         Binds));
  auto Bytes = isa::encodeProgram(K.Code);
  Rng R(42);
  for (unsigned Trial = 0; Trial < 500; ++Trial) {
    auto Mutated = Bytes;
    unsigned Flips = static_cast<unsigned>(R.nextInRange(1, 4));
    for (unsigned F = 0; F < Flips; ++F)
      Mutated[R.nextBelow(Mutated.size())] ^=
          static_cast<uint8_t>(1u << R.nextBelow(8));
    auto Prog = isa::decodeProgram(Mutated);
    if (Prog) {
      for (const isa::Instruction &I : *Prog)
        EXPECT_EQ(isa::validate(I), "");
    }
  }
}

//===----------------------------------------------------------------------===//
// Fat binary fuzz
//===----------------------------------------------------------------------===//

namespace {

std::vector<uint8_t> sampleBinary() {
  fatbin::FatBinary FB;
  fatbin::CodeSection S;
  S.Name = "kernel";
  S.Code = std::vector<uint8_t>(isa::InstrBytes * 3, 0);
  S.ScalarParams = {"a", "b"};
  S.SurfaceParams = {"x"};
  S.Debug.Lines = {1, 2, 3};
  S.Debug.SourceText = "  nop\n  nop\n  halt\n";
  S.Debug.Labels["top"] = 0;
  FB.addSection(std::move(S));
  return FB.serialize();
}

} // namespace

class FatBinaryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FatBinaryFuzzTest, MutatedBinariesNeverCrash) {
  auto Bytes = sampleBinary();
  Rng R(GetParam() + 7);
  for (unsigned Trial = 0; Trial < 300; ++Trial) {
    auto Mutated = Bytes;
    switch (R.nextBelow(3)) {
    case 0: // bit flips
      for (unsigned F = 0; F < 4; ++F)
        Mutated[R.nextBelow(Mutated.size())] ^= R.nextByte();
      break;
    case 1: // truncation
      Mutated.resize(R.nextBelow(Mutated.size()));
      break;
    default: // garbage extension
      for (unsigned F = 0; F < 16; ++F)
        Mutated.push_back(R.nextByte());
      break;
    }
    auto FB = fatbin::FatBinary::deserialize(Mutated);
    if (FB) {
      // Structurally accepted mutations must still be internally
      // consistent enough to serialize again.
      auto Re = FB->serialize();
      EXPECT_FALSE(Re.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FatBinaryFuzzTest,
                         ::testing::Range<uint64_t>(0, 6));

TEST(FatBinaryFuzzTest, LoaderRejectsCorruptCodeSections) {
  // A fat binary whose code bytes are garbage must be rejected by the
  // runtime loader, not crash the device.
  fatbin::FatBinary FB;
  fatbin::CodeSection S;
  S.Name = "garbage";
  S.Code = std::vector<uint8_t>(isa::InstrBytes, 0xff);
  FB.addSection(std::move(S));

  exo::ExoPlatform P;
  chi::Runtime RT(P);
  Error E = RT.loadBinary(FB);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("garbage"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Assembler fuzz
//===----------------------------------------------------------------------===//

class AssemblerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssemblerFuzzTest, RandomTextNeverCrashes) {
  Rng R(GetParam() * 31 + 5);
  const char Charset[] =
      "abcdefghijklmnopqrstuvwxyz0123456789.,=()[]:;!@#- \tvrp";
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    std::string Src;
    unsigned Lines = static_cast<unsigned>(R.nextInRange(1, 6));
    for (unsigned L = 0; L < Lines; ++L) {
      unsigned Len = static_cast<unsigned>(R.nextInRange(0, 40));
      for (unsigned C = 0; C < Len; ++C)
        Src += Charset[R.nextBelow(sizeof(Charset) - 1)];
      Src += '\n';
    }
    auto K = xasm::assembleKernel(Src, xasm::SymbolBindings());
    if (K) {
      for (const isa::Instruction &I : K->Code)
        EXPECT_EQ(isa::validate(I), "") << Src;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(AssemblerFuzzTest, MutatedValidSourceNeverCrashes) {
  const std::string Base = "  mov.1.dw vr1 = 0\n"
                           "loop:\n"
                           "  add.8.dw [vr2..vr9] = [vr2..vr9], 1\n"
                           "  cmp.lt.1.dw p1 = vr1, 3\n"
                           "  br p1, loop\n"
                           "  halt\n";
  Rng R(99);
  for (unsigned Trial = 0; Trial < 500; ++Trial) {
    std::string Src = Base;
    unsigned Edits = static_cast<unsigned>(R.nextInRange(1, 3));
    for (unsigned E = 0; E < Edits; ++E) {
      size_t Pos = R.nextBelow(Src.size());
      switch (R.nextBelow(3)) {
      case 0:
        Src[Pos] = static_cast<char>(R.nextInRange(32, 126));
        break;
      case 1:
        Src.erase(Pos, 1);
        break;
      default:
        Src.insert(Pos, 1, static_cast<char>(R.nextInRange(32, 126)));
        break;
      }
    }
    auto K = xasm::assembleKernel(Src, xasm::SymbolBindings());
    (void)K; // accept or reject; just never crash
  }
}

//===----------------------------------------------------------------------===//
// ExoNet wire-frame fuzz
//===----------------------------------------------------------------------===//

namespace {

namespace wire = net::wire;

/// A representative valid Submit frame (header + body) to mutate,
/// with the wire-v3 idempotency/deadline fields populated so mutations
/// exercise their decode paths too.
std::vector<uint8_t> sampleSubmitFrame() {
  wire::SubmitMsg M;
  M.Tag = 17;
  M.Pri = 1;
  M.Flags = wire::SubmitHold;
  M.Attempt = 2;
  M.ExpiresAtUnixNs = 1'700'000'000'000'000'000;
  M.Shreds = 8;
  M.Kernel = "vecadd";
  M.Params = {{"i", wire::ParamKind::Shred, 0},
              {"k", wire::ParamKind::Value, 9}};
  M.Bind = {"A", "B", "C"};
  wire::SurfaceMsg Up;
  Up.Name = "A";
  Up.Width = 4;
  Up.Fill = wire::SurfaceFill::Data;
  Up.Data.assign(16, 0x7f);
  M.Uploads = {Up};
  return wire::encode(M);
}

/// A valid resumable Hello frame (wire v3: session id + flags).
std::vector<uint8_t> sampleHelloFrame() {
  wire::HelloMsg M;
  M.ClientName = "fuzz";
  M.SessionId = 0xfeedfacecafeull;
  M.Flags = wire::HelloResumable;
  return wire::encode(M);
}

/// A valid Result frame with the v3 replayed marker and shard rows.
std::vector<uint8_t> sampleResultFrame() {
  wire::ResultMsg M;
  M.Tag = 17;
  M.JobId = 9;
  M.State = 2; // Completed
  M.Replayed = 1;
  M.BatchSize = 2;
  M.SubmitNs = 1.5;
  M.StartNs = 2.5;
  M.EndNs = 3.5;
  M.Shards = {{0, 0, 8, 2}, {1, 1, 4, 0}};
  return wire::encode(M);
}

/// Runs \p Bytes through a fresh parser; decodes any frames it yields.
/// The contract under hostile input: an explicit parse/decode error or
/// a structurally valid message — never a crash, hang, or silent
/// out-of-bounds read.
void feedAndDrain(const std::vector<uint8_t> &Bytes) {
  wire::FrameParser P;
  P.feed(Bytes);
  while (auto F = P.next()) {
    switch (F->Type) {
    case wire::MsgType::Submit:
      (void)wire::decodeSubmit(F->Body);
      break;
    case wire::MsgType::Surface:
      (void)wire::decodeSurface(F->Body);
      break;
    case wire::MsgType::Hello:
      (void)wire::decodeHello(F->Body);
      break;
    case wire::MsgType::Welcome:
      (void)wire::decodeWelcome(F->Body);
      break;
    case wire::MsgType::Result:
      (void)wire::decodeResult(F->Body);
      break;
    default:
      break;
    }
  }
}

} // namespace

class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, RandomBytesNeverCrashTheParser) {
  Rng R(GetParam() * 0x1f3 + 11);
  for (unsigned Trial = 0; Trial < 300; ++Trial) {
    std::vector<uint8_t> Bytes(R.nextInRange(0, 256));
    for (auto &B : Bytes)
      B = R.nextByte();
    feedAndDrain(Bytes);
  }
}

TEST_P(WireFuzzTest, MutatedFramesDecodeOrReject) {
  const std::vector<uint8_t> Bases[] = {sampleSubmitFrame(),
                                        sampleHelloFrame(),
                                        sampleResultFrame()};
  Rng R(GetParam() * 131 + 3);
  for (unsigned Trial = 0; Trial < 300; ++Trial) {
    auto Mutated = Bases[Trial % 3];
    switch (R.nextBelow(3)) {
    case 0: // bit flips (past the magic, so frames still parse)
      for (unsigned F = 0; F < 4; ++F)
        Mutated[4 + R.nextBelow(Mutated.size() - 4)] ^= R.nextByte();
      break;
    case 1: // truncation
      Mutated.resize(R.nextBelow(Mutated.size()));
      break;
    default: // garbage extension
      for (unsigned F = 0; F < 16; ++F)
        Mutated.push_back(R.nextByte());
      break;
    }
    feedAndDrain(Mutated);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest, ::testing::Range<uint64_t>(0, 6));

// Truncating a valid multi-frame stream at every prefix length either
// yields a strict prefix of the full frame sequence (need-more) or a
// poisoned parser with a reason — never a bogus frame, never a crash.
// The stream covers the wire-v3 frames end to end: a resumable Hello,
// a Submit with Attempt + absolute deadline, a replayed Result, a Run.
TEST(WireFuzzTest, EveryTruncationIsNeedMoreOrError) {
  std::vector<uint8_t> Stream = sampleHelloFrame();
  for (const auto &F :
       {sampleSubmitFrame(), sampleResultFrame(),
        wire::encode(wire::RunMsg{2})})
    Stream.insert(Stream.end(), F.begin(), F.end());

  // Frame boundaries of the intact stream, for prefix comparison.
  std::vector<size_t> Boundaries;
  {
    wire::FrameParser P;
    size_t Fed = 0;
    for (uint8_t B : Stream) {
      P.feed(&B, 1);
      ++Fed;
      while (P.next())
        Boundaries.push_back(Fed);
    }
    ASSERT_EQ(Boundaries.size(), 4u);
  }

  for (size_t Cut = 0; Cut < Stream.size(); ++Cut) {
    wire::FrameParser P;
    P.feed(Stream.data(), Cut);
    unsigned Yielded = 0;
    while (P.next())
      ++Yielded;
    EXPECT_TRUE(P.error().empty()) << "cut=" << Cut << ": " << P.error();
    // Exactly the frames whose boundary fits inside the cut.
    unsigned Want = 0;
    for (size_t B : Boundaries)
      Want += B <= Cut;
    EXPECT_EQ(Yielded, Want) << "cut=" << Cut;
  }
}

// The wire-v3 fields carry semantic constraints beyond structure:
// unknown hello flag bits, a resumable hello without a session id, an
// out-of-range resumed/replayed byte, and a negative absolute deadline
// are all rejected with a reason (encode() is deliberately unvalidated
// so these can be constructed directly).
TEST(WireFuzzTest, V3SemanticViolationsRejectWithReason) {
  auto bodyOf = [](const std::vector<uint8_t> &FrameBytes) {
    wire::FrameParser P;
    P.feed(FrameBytes);
    auto F = P.next();
    EXPECT_TRUE(F.has_value());
    return F ? F->Body : std::vector<uint8_t>();
  };
  {
    wire::HelloMsg M;
    M.ClientName = "x";
    M.SessionId = 1;
    M.Flags = 0x82; // unknown high bit
    auto D = wire::decodeHello(bodyOf(wire::encode(M)));
    ASSERT_FALSE(static_cast<bool>(D));
    EXPECT_NE(D.message().find("unknown bits"), std::string::npos);
  }
  {
    wire::HelloMsg M;
    M.ClientName = "x";
    M.SessionId = 0;
    M.Flags = wire::HelloResumable;
    auto D = wire::decodeHello(bodyOf(wire::encode(M)));
    ASSERT_FALSE(static_cast<bool>(D));
    EXPECT_NE(D.message().find("zero session id"), std::string::npos);
  }
  {
    wire::WelcomeMsg M;
    M.ClientId = 1;
    M.Resumed = 2;
    auto D = wire::decodeWelcome(bodyOf(wire::encode(M)));
    ASSERT_FALSE(static_cast<bool>(D));
    EXPECT_NE(D.message().find("out of range"), std::string::npos);
  }
  {
    wire::SubmitMsg M;
    M.Kernel = "k";
    M.ExpiresAtUnixNs = -1;
    auto D = wire::decodeSubmit(bodyOf(wire::encode(M)));
    ASSERT_FALSE(static_cast<bool>(D));
    EXPECT_NE(D.message().find("negative absolute deadline"),
              std::string::npos);
  }
  {
    wire::ResultMsg M;
    M.Replayed = 7;
    auto D = wire::decodeResult(bodyOf(wire::encode(M)));
    ASSERT_FALSE(static_cast<bool>(D));
    EXPECT_NE(D.message().find("out of range"), std::string::npos);
  }
}

TEST(WireFuzzTest, BadMagicVersionAndOversizeRejectWithReason) {
  // Bad magic.
  {
    auto F = sampleSubmitFrame();
    F[0] = 'Y';
    wire::FrameParser P;
    P.feed(F);
    EXPECT_FALSE(P.next().has_value());
    ASSERT_TRUE(P.poisoned());
    EXPECT_NE(P.error().find("magic"), std::string::npos) << P.error();
  }
  // Unknown version.
  {
    auto F = sampleSubmitFrame();
    F[4] = 0x77;
    F[5] = 0x77;
    wire::FrameParser P;
    P.feed(F);
    EXPECT_FALSE(P.next().has_value());
    ASSERT_TRUE(P.poisoned());
    EXPECT_NE(P.error().find("version"), std::string::npos) << P.error();
  }
  // Oversized body length: rejected at the header, nothing buffered.
  {
    auto F = sampleSubmitFrame();
    uint32_t Huge = wire::MaxBodyBytes + 5;
    for (int B = 0; B < 4; ++B)
      F[8 + B] = static_cast<uint8_t>(Huge >> (B * 8));
    wire::FrameParser P;
    P.feed(F);
    EXPECT_FALSE(P.next().has_value());
    ASSERT_TRUE(P.poisoned());
    EXPECT_EQ(P.buffered(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Device-level failure injection
//===----------------------------------------------------------------------===//

TEST(DeviceFailureTest, RunawayKernelIsBounded) {
  // An infinite loop would hang a wall-clock interpreter; the device is
  // driven by the host, so we bound it with a step hook that pauses.
  exo::ExoPlatform P;
  xasm::SymbolBindings Binds;
  auto K = cantFail(xasm::assembleKernel("spin:\n  jmp spin\n", Binds));
  gma::KernelImage Img;
  Img.Code = K.Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  P.device().enqueueShred(std::move(D));

  uint64_t Steps = 0;
  P.device().setStepHook([&](uint32_t, uint32_t, uint32_t) {
    return ++Steps > 10000 ? gma::StepAction::Pause
                           : gma::StepAction::Continue;
  });
  auto Exit = P.device().run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit));
  EXPECT_EQ(*Exit, gma::RunExit::Paused);
}

TEST(DeviceFailureTest, SpawnBombIsObservable) {
  // A shred that spawns two children per execution grows the queue; the
  // hook lets a supervisor detect and stop it (the runtime's backstop).
  exo::ExoPlatform P;
  xasm::SymbolBindings Binds;
  auto K = cantFail(xasm::assembleKernel("  spawn 0\n  spawn 0\n  halt\n",
                                         Binds));
  gma::KernelImage Img;
  Img.Code = K.Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  P.device().enqueueShred(std::move(D));

  uint64_t Steps = 0;
  P.device().setStepHook([&](uint32_t, uint32_t, uint32_t) {
    return ++Steps > 5000 ? gma::StepAction::Pause
                          : gma::StepAction::Continue;
  });
  auto Exit = P.device().run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit));
  EXPECT_EQ(*Exit, gma::RunExit::Paused);
  EXPECT_GT(P.device().queuedShreds(), 100u); // the bomb was growing
}
