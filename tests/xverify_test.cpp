//===- tests/xverify_test.cpp - XVerify race/sync/bounds verifier tests -------===//
//
// Exercises the three analyses of xopt::verifyKernel (DESIGN.md §10):
// inter-shred race detection, sync-protocol checks, and value-range
// bounds/divide verification — including the no-false-positive contracts
// on clean control kernels and on the production kernel library.
//
//===----------------------------------------------------------------------===//

#include "xopt/Verify.h"

#include "chi/ProgramBuilder.h"
#include "kernels/Workloads.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::isa;
using namespace exochi::xopt;

namespace {

std::vector<Instruction> assembleOrDie(const char *Asm) {
  auto K = xasm::assembleKernel(Asm, xasm::SymbolBindings());
  EXPECT_TRUE(static_cast<bool>(K)) << K.message();
  return K->Code;
}

/// A spec with \p NumParams scalar parameters and \p NumSurfaces bound
/// surface slots of unknown geometry.
VerifySpec specFor(unsigned NumParams, int32_t NumSurfaces = 1) {
  VerifySpec S;
  S.NumScalarParams = NumParams;
  S.NumSurfaceSlots = NumSurfaces;
  return S;
}

bool anyDiagContains(const LintReport &R, const char *Sub) {
  for (const LintDiag &D : R.Diags)
    if (D.Msg.find(Sub) != std::string::npos)
      return true;
  return false;
}

std::string allDiags(const LintReport &R) {
  std::string Out;
  for (const LintDiag &D : R.Diags)
    Out += std::string(severityName(D.Sev)) + ": " + D.render(R.Kernel) + "\n";
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Defect class 1: inter-shred races
//===----------------------------------------------------------------------===//

TEST(XVerifyRaceTest, UniformStoreIsWriteWriteRace) {
  // Every shred writes element 0: a textbook write/write race.
  auto Code = assembleOrDie("  mov.1.dw vr8 = 0\n"
                            "  st.1.dw (surf0, vr8, 0) = vr0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1), "uniform");
  ASSERT_EQ(R.count(Severity::Warning), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "write/write race")) << allDiags(R);
  EXPECT_EQ(R.firstProblem()->Instr, 1u);
  // Diagnostics render as kernel:pc.
  EXPECT_NE(R.warnings()[0].find("uniform:1:"), std::string::npos);
}

TEST(XVerifyRaceTest, InsufficientStrideRaces) {
  // Stride 4 per shred id but 8 elements written: neighbouring shreds
  // overlap by 4 elements.
  auto Code = assembleOrDie("  sid vr8\n"
                            "  shl.1.dw vr8 = vr8, 2\n"
                            "  st.8.dw (surf0, vr8, 0) = [vr0..vr7]\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(0));
  EXPECT_TRUE(anyDiagContains(R, "race")) << allDiags(R);
  EXPECT_GE(R.count(Severity::Warning), 1u);
}

TEST(XVerifyRaceTest, SidStridedDisjointStoreIsClean) {
  // Stride 8, 8 elements written: a perfect partition by shred id — the
  // clean control for InsufficientStrideRaces.
  auto Code = assembleOrDie("  sid vr8\n"
                            "  shl.1.dw vr8 = vr8, 3\n"
                            "  st.8.dw (surf0, vr8, 0) = [vr0..vr7]\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(0));
  EXPECT_TRUE(R.Diags.empty()) << allDiags(R);
}

TEST(XVerifyRaceTest, ParamDerivedFootprintsAreTrustedByContract) {
  // Coordinates derived from scalar parameters are partitioned by the
  // dispatcher (each shred gets its own tile): never reported as races
  // and at most noted for bounds.
  auto Code = assembleOrDie("  shl.1.dw vr8 = vr0, 3\n"
                            "  st.8.dw (surf0, vr8, 0) = [vr0..vr7]\n"
                            "  ld.8.dw [vr16..vr23] = (surf0, vr8, 0)\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(R.clean()) << allDiags(R);
  EXPECT_EQ(R.count(Severity::Warning), 0u);
  EXPECT_EQ(R.count(Severity::Error), 0u);
}

TEST(XVerifyRaceTest, XmitWaitOrderingSuppressesRace) {
  // Token-passing mutual exclusion: the store is bracketed by a wait
  // before and an xmit after on the same sync register, so the static
  // happens-before shadow suppresses the uniform-store race.
  auto Code = assembleOrDie("  sid vr8\n"
                            "  xmit vr8, vr9 = vr0\n"
                            "  wait vr9\n"
                            "  mov.1.dw vr10 = 0\n"
                            "  st.1.dw (surf0, vr10, 0) = vr0\n"
                            "  xmit vr8, vr9 = vr0\n"
                            "  wait vr9\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(R.Diags.empty()) << allDiags(R);
}

TEST(XVerifyRaceTest, UnorderedStoreStillRaces) {
  // Same kernel minus the trailing xmit: no xmit follows the store on
  // every path, so the ordering argument collapses and the race returns.
  auto Code = assembleOrDie("  sid vr8\n"
                            "  xmit vr8, vr9 = vr0\n"
                            "  wait vr9\n"
                            "  mov.1.dw vr10 = 0\n"
                            "  st.1.dw (surf0, vr10, 0) = vr0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(anyDiagContains(R, "race")) << allDiags(R);
}

TEST(XVerifyRaceTest, TwoDUniformBlockStoreRaces) {
  auto Code = assembleOrDie("  mov.1.dw vr8 = 0\n"
                            "  mov.1.dw vr9 = 0\n"
                            "  stblk.8.dw (surf0, vr8, vr9) = [vr0..vr7]\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(anyDiagContains(R, "write/write race")) << allDiags(R);
}

TEST(XVerifyRaceTest, TwoDDisjointRowsAreClean) {
  // Row = shred id: the y footprints of distinct shreds never meet, and
  // a 2-D race needs overlap in both axes.
  auto Code = assembleOrDie("  sid vr9\n"
                            "  mov.1.dw vr8 = 0\n"
                            "  stblk.8.dw (surf0, vr8, vr9) = [vr0..vr7]\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(0));
  EXPECT_TRUE(R.Diags.empty()) << allDiags(R);
}

//===----------------------------------------------------------------------===//
// Defect class 2: sync-protocol violations
//===----------------------------------------------------------------------===//

TEST(XVerifySyncTest, WaitWithNoXmitIsDeadlock) {
  auto Code = assembleOrDie("  wait vr9\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(0));
  ASSERT_EQ(R.count(Severity::Warning), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "no xmit"));
  EXPECT_TRUE(anyDiagContains(R, "deadlock"));
}

TEST(XVerifySyncTest, SelfWaitCycleFlagged) {
  // The only matching xmit is behind the wait: no shred of this kernel
  // can ever produce the signal the wait consumes.
  auto Code = assembleOrDie("  mov.1.dw vr10 = 0\n"
                            "  wait vr9\n"
                            "  sid vr8\n"
                            "  xmit vr8, vr9 = vr0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(anyDiagContains(R, "self-wait cycle")) << allDiags(R);
}

TEST(XVerifySyncTest, XmitBeforeWaitIsClean) {
  auto Code = assembleOrDie("  sid vr8\n"
                            "  xmit vr8, vr9 = vr0\n"
                            "  wait vr9\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(R.Diags.empty()) << allDiags(R);
}

TEST(XVerifySyncTest, XmitToProvablyInvalidShredIdIsError) {
  // Shred ids are 1-based; target 0 can never name a shred.
  auto Code = assembleOrDie("  mov.1.dw vr8 = 0\n"
                            "  xmit vr8, vr9 = vr0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "provably invalid"));
}

TEST(XVerifySyncTest, XmitMaybeInvalidTargetWarns) {
  // sid - 1 is 0 for the first shred: possibly invalid.
  auto Code = assembleOrDie("  sid vr8\n"
                            "  sub.1.dw vr8 = vr8, 1\n"
                            "  xmit vr8, vr9 = vr0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  ASSERT_GE(R.count(Severity::Warning), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "may target an invalid shred id"));
}

TEST(XVerifySyncTest, UnconditionalSelfSpawnIsError) {
  // Every execution spawns a child running the same kernel: the shred
  // tree never quiesces.
  auto Code = assembleOrDie("  spawn vr0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "respawns"));
}

TEST(XVerifySyncTest, GuardedSpawnIsClean) {
  // A spawn behind a data-dependent branch can be skipped, so the
  // recursion has an exit.
  auto Code = assembleOrDie("  sid vr8\n"
                            "  cmp.gt.1.dw p1 = vr8, 3\n"
                            "  br p1, done\n"
                            "  spawn vr0\n"
                            "done:\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(R.Diags.empty()) << allDiags(R);
}

//===----------------------------------------------------------------------===//
// Defect class 3: surface bounds
//===----------------------------------------------------------------------===//

TEST(XVerifyBoundsTest, ConstantIndexProvablyOutOfBounds) {
  auto Code = assembleOrDie("  mov.1.dw vr8 = 100\n"
                            "  ld.1.dw vr9 = (surf0, vr8, 0)\n"
                            "  halt\n");
  VerifySpec Spec = specFor(0);
  Spec.Surfaces[0] = {64, 1};
  LintReport R = verifyKernel(Code, Spec);
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "provably out of bounds"));
  EXPECT_EQ(R.firstProblem()->Instr, 1u);
}

TEST(XVerifyBoundsTest, AccessWidthCountsAgainstExtent) {
  // First element 60 is in range, but the 8-wide access runs to 67 on a
  // 64-element surface.
  auto Code = assembleOrDie("  mov.1.dw vr8 = 60\n"
                            "  ld.8.dw [vr16..vr23] = (surf0, vr8, 0)\n"
                            "  halt\n");
  VerifySpec Spec = specFor(0);
  Spec.Surfaces[0] = {64, 1};
  LintReport R = verifyKernel(Code, Spec);
  EXPECT_EQ(R.count(Severity::Error), 1u) << allDiags(R);

  // The last in-bounds first element, 56, is clean.
  auto Ok = assembleOrDie("  mov.1.dw vr8 = 56\n"
                          "  ld.8.dw [vr16..vr23] = (surf0, vr8, 0)\n"
                          "  halt\n");
  EXPECT_TRUE(verifyKernel(Ok, Spec).Diags.empty());
}

TEST(XVerifyBoundsTest, BoundedIndexMayBeOutOfBoundsWarns) {
  // sid & 127 can exceed the 64-element surface but does not have to.
  auto Code = assembleOrDie("  sid vr8\n"
                            "  and.1.dw vr8 = vr8, 127\n"
                            "  ld.1.dw vr9 = (surf0, vr8, 0)\n"
                            "  halt\n");
  VerifySpec Spec = specFor(0);
  Spec.Surfaces[0] = {64, 1};
  LintReport R = verifyKernel(Code, Spec);
  ASSERT_EQ(R.count(Severity::Warning), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "may be out of bounds"));
}

TEST(XVerifyBoundsTest, NegativeIndexFaultsEvenWithoutGeometry) {
  auto Code = assembleOrDie("  mov.1.dw vr8 = -5\n"
                            "  ld.1.dw vr9 = (surf0, vr8, 0)\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(0));
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "provably negative"));
}

TEST(XVerifyBoundsTest, UnboundSurfaceSlotIsError) {
  auto Code = assembleOrDie("  mov.1.dw vr8 = 0\n"
                            "  ld.1.dw vr9 = (surf1, vr8, 0)\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(0, /*NumSurfaces=*/1));
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "surface slot 1"));
}

TEST(XVerifyBoundsTest, BlockAccessChecksBothAxes) {
  auto Code = assembleOrDie("  mov.1.dw vr8 = 0\n"
                            "  mov.1.dw vr9 = 50\n"
                            "  ldblk.8.dw [vr16..vr23] = (surf0, vr8, vr9)\n"
                            "  halt\n");
  VerifySpec Spec = specFor(0);
  Spec.Surfaces[0] = {16, 32}; // 16 wide, 32 rows; y = 50 is off the end
  LintReport R = verifyKernel(Code, Spec);
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "block y"));
}

TEST(XVerifyBoundsTest, ParamRangeSharpensTheVerdict) {
  // The same kernel is silent with an unconstrained parameter, clean
  // with a known-good value, and a provable error with a known-bad one.
  auto Code = assembleOrDie("  ld.8.dw [vr16..vr23] = (surf0, vr0, 0)\n"
                            "  halt\n");
  VerifySpec Spec = specFor(1);
  Spec.Surfaces[0] = {64, 1};
  EXPECT_TRUE(verifyKernel(Code, Spec).clean());

  Spec.ParamRanges[0] = Range::point(8);
  EXPECT_TRUE(verifyKernel(Code, Spec).Diags.empty());

  Spec.ParamRanges[0] = Range::point(60);
  LintReport R = verifyKernel(Code, Spec);
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "provably out of bounds"));
}

//===----------------------------------------------------------------------===//
// Defect class 4: divide by zero
//===----------------------------------------------------------------------===//

TEST(XVerifyDivTest, DivideByConstantZeroIsError) {
  auto Code = assembleOrDie("  div.1.dw vr8 = vr0, 0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  ASSERT_EQ(R.count(Severity::Error), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "divides by zero"));
}

TEST(XVerifyDivTest, PredicatedDivideByZeroOnlyWarns) {
  // The predicate can keep every faulting lane disabled.
  auto Code = assembleOrDie("  cmp.eq.1.dw p1 = vr0, 7\n"
                            "  (p1) div.1.dw vr8 = vr0, 0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_EQ(R.count(Severity::Error), 0u) << allDiags(R);
  ASSERT_EQ(R.count(Severity::Warning), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "when the predicate is set"));
}

TEST(XVerifyDivTest, BoundedDivisorContainingZeroWarns) {
  auto Code = assembleOrDie("  sid vr9\n"
                            "  and.1.dw vr9 = vr9, 3\n"
                            "  div.1.dw vr8 = vr0, vr9\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  ASSERT_EQ(R.count(Severity::Warning), 1u) << allDiags(R);
  EXPECT_TRUE(anyDiagContains(R, "may divide by zero"));
}

TEST(XVerifyDivTest, DivisorFromParamIsOnlyNoted) {
  // A raw parameter divisor is the dispatcher's responsibility: noted,
  // not warned, so clean production kernels stay clean.
  auto Code = assembleOrDie("  div.1.dw vr8 = vr1, vr0\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(2));
  EXPECT_TRUE(R.clean()) << allDiags(R);
  EXPECT_GE(R.count(Severity::Note), 1u);
}

TEST(XVerifyDivTest, ProvablyNonzeroDivisorIsClean) {
  // (sid & 3) + 1 is in [1, 4]: no fault possible.
  auto Code = assembleOrDie("  sid vr9\n"
                            "  and.1.dw vr9 = vr9, 3\n"
                            "  add.1.dw vr9 = vr9, 1\n"
                            "  div.1.dw vr8 = vr0, vr9\n"
                            "  halt\n");
  LintReport R = verifyKernel(Code, specFor(1));
  EXPECT_TRUE(R.Diags.empty()) << allDiags(R);
}

//===----------------------------------------------------------------------===//
// The production kernel library verifies clean (the CI gate behind
// `exochi-lint --registry`).
//===----------------------------------------------------------------------===//

TEST(XVerifyRegistryTest, AllTable2KernelsVerifyClean) {
  chi::ProgramBuilder PB;
  auto Workloads = kernels::createTable2Workloads(0.25);
  ASSERT_FALSE(Workloads.empty());
  for (const auto &W : Workloads) {
    Error E = W->compile(PB);
    ASSERT_FALSE(static_cast<bool>(E)) << W->name() << ": " << E.message();
    const LintReport *R = PB.lintReport(W->name());
    ASSERT_NE(R, nullptr) << W->name();
    EXPECT_TRUE(R->clean()) << W->name() << ":\n" << allDiags(*R);
  }
}
