//===- tests/gma_test.cpp - Unit tests for the GMA device model --------------===//

#include "gma/GmaDevice.h"

#include "mem/AddressSpace.h"
#include "support/Random.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exochi;
using namespace exochi::gma;

namespace {

/// Minimal ATR/CEH proxy used for device unit tests: services translation
/// misses against an Ia32AddressSpace (including demand paging) and
/// emulates f64 adds. The production proxy lives in src/exo.
class TestProxy : public ProxySignalHandler {
public:
  explicit TestProxy(mem::Ia32AddressSpace &AS) : AS(AS) {}

  Expected<mem::TimeNs> onTranslationMiss(mem::VirtAddr Va, bool IsWrite,
                                          mem::GpuMemType MemType,
                                          mem::Tlb &Tlb) override {
    ++Misses;
    mem::PageFault F;
    auto T = AS.translate(Va, IsWrite, &F);
    if (!T) {
      if (!AS.handleFault(F))
        return Error::make("unserviceable fault");
      T = AS.translate(Va, IsWrite);
      if (!T)
        return T.takeError();
    }
    auto Pte = mem::transcodePteIa32ToGpu(T->Pte, MemType);
    if (!Pte)
      return Pte.takeError();
    Tlb.insert(mem::pageNumber(Va), *Pte);
    return 500.0; // proxy round-trip latency
  }

  Expected<mem::TimeNs> onException(const ExceptionInfo &Info,
                                    ShredRegView &Regs) override {
    ++Exceptions;
    LastKind = Info.Kind;
    if (Info.Kind != ExceptionKind::UnsupportedType ||
        Info.Instr.Op != isa::Opcode::Add ||
        Info.Instr.Ty != isa::ElemType::F64)
      return Error::make("test proxy only emulates f64 add");

    const isa::Instruction &I = Info.Instr;
    for (unsigned L = 0; L < I.Width; ++L) {
      auto ReadF64 = [&](const isa::Operand &O) {
        unsigned R = O.Reg0 + 2 * L;
        uint64_t Bits = Regs.readReg(R) |
                        (static_cast<uint64_t>(Regs.readReg(R + 1)) << 32);
        double D;
        std::memcpy(&D, &Bits, 8);
        return D;
      };
      double Result = ReadF64(I.Src0) + ReadF64(I.Src1);
      uint64_t Bits;
      std::memcpy(&Bits, &Result, 8);
      unsigned R = I.Dst.Reg0 + 2 * L;
      Regs.writeReg(R, static_cast<uint32_t>(Bits));
      Regs.writeReg(R + 1, static_cast<uint32_t>(Bits >> 32));
    }
    return 2000.0; // emulation cost
  }

  mem::Ia32AddressSpace &AS;
  unsigned Misses = 0;
  unsigned Exceptions = 0;
  ExceptionKind LastKind = ExceptionKind::UnsupportedType;
};

/// Common test rig: memory system + address space + device + proxy.
struct Rig {
  explicit Rig(GmaConfig Config = GmaConfig())
      : AS(PM), Device(Config, PM, Bus), Proxy(AS) {
    Device.setProxyHandler(&Proxy);
  }

  /// Maps and zeroes a buffer of \p Bytes, returning its virtual base.
  mem::VirtAddr alloc(uint64_t Bytes) {
    mem::VirtAddr Va = Allocator.allocate(Bytes);
    AS.reserve(Va, (Bytes + mem::PageSize - 1) & ~mem::PageOffsetMask,
               /*Writable=*/true, "test");
    return Va;
  }

  uint32_t loadKernel(const char *Asm, const xasm::SymbolBindings &Binds) {
    auto K = xasm::assembleKernel(Asm, Binds);
    EXPECT_TRUE(static_cast<bool>(K)) << K.message();
    KernelImage Img;
    Img.Code = K->Code;
    return Device.registerKernel(std::move(Img));
  }

  mem::PhysicalMemory PM;
  mem::MemoryBus Bus;
  mem::Ia32AddressSpace AS;
  mem::VirtualAllocator Allocator;
  GmaDevice Device;
  TestProxy Proxy;
};

} // namespace

//===----------------------------------------------------------------------===//
// Functional execution
//===----------------------------------------------------------------------===//

TEST(GmaDeviceTest, Figure6VectorAdd) {
  Rig R;
  constexpr unsigned N = 64;
  mem::VirtAddr A = R.alloc(N * 4), B = R.alloc(N * 4), C = R.alloc(N * 4);
  for (unsigned K = 0; K < N; ++K) {
    R.AS.store<int32_t>(A + K * 4, static_cast<int32_t>(K));
    R.AS.store<int32_t>(B + K * 4, static_cast<int32_t>(1000 + K));
  }

  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("A", 0);
  Binds.bindSurface("B", 1);
  Binds.bindSurface("C", 2);
  uint32_t Kid = R.loadKernel(R"(
    shl.1.dw vr1 = i, 3
    ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
    ld.8.dw  [vr10..vr17] = (B, vr1, 0)
    add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw  (C, vr1, 0)  = [vr18..vr25]
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({A, N, 1, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  Surfaces->push_back({B, N, 1, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  Surfaces->push_back({C, N, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});

  for (unsigned I = 0; I < N / 8; ++I) {
    ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {static_cast<int32_t>(I)};
    D.Surfaces = Surfaces;
    R.Device.enqueueShred(std::move(D));
  }

  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_EQ(*Exit, RunExit::QueueDrained);

  for (unsigned K = 0; K < N; ++K)
    EXPECT_EQ(R.AS.load<int32_t>(C + K * 4), static_cast<int32_t>(1000 + 2 * K))
        << "element " << K;

  const GmaRunStats &S = R.Device.stats();
  EXPECT_EQ(S.ShredsExecuted, N / 8);
  EXPECT_GT(S.Instructions, 5u * (N / 8) - 1);
  EXPECT_GT(S.TlbMisses, 0u);
  EXPECT_GT(S.elapsedNs(), 0.0);
}

TEST(GmaDeviceTest, ControlFlowLoopSumsRange) {
  // Sums 0..99 with a cmp/br loop and stores the result.
  Rig R;
  mem::VirtAddr Out = R.alloc(4);
  xasm::SymbolBindings Binds;
  Binds.bindSurface("out", 0);
  uint32_t Kid = R.loadKernel(R"(
    mov.1.dw vr0 = 0     ; sum
    mov.1.dw vr1 = 0     ; i
  loop:
    add.1.dw vr0 = vr0, vr1
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p1 = vr1, 100
    br p1, loop
    mov.1.dw vr2 = 0
    st.1.dw (out, vr2, 0) = vr0
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Out, 1, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(D));

  ASSERT_TRUE(static_cast<bool>(R.Device.run(0.0)));
  EXPECT_EQ(R.AS.load<int32_t>(Out), 4950);
}

TEST(GmaDeviceTest, PredicatedStoreLeavesMaskedElements) {
  Rig R;
  constexpr unsigned N = 8;
  mem::VirtAddr Buf = R.alloc(N * 4);
  for (unsigned K = 0; K < N; ++K)
    R.AS.store<int32_t>(Buf + K * 4, -1);

  xasm::SymbolBindings Binds;
  Binds.bindSurface("buf", 0);
  // Lanes hold 0..7; predicate marks lanes with value >= 4; only those
  // lanes store 99.
  uint32_t Kid = R.loadKernel(R"(
    mov.1.dw vr20 = 0
    mov.1.dw vr0 = 0
    mov.1.dw vr1 = 1
    mov.1.dw vr2 = 2
    mov.1.dw vr3 = 3
    mov.1.dw vr4 = 4
    mov.1.dw vr5 = 5
    mov.1.dw vr6 = 6
    mov.1.dw vr7 = 7
    cmp.ge.8.dw p1 = [vr0..vr7], 4
    mov.8.dw [vr8..vr15] = 99
    (p1) st.8.dw (buf, vr20, 0) = [vr8..vr15]
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Buf, N, 1, isa::ElemType::I32, SurfaceMode::InputOutput,
                       mem::GpuMemType::Cached});
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(D));
  ASSERT_TRUE(static_cast<bool>(R.Device.run(0.0)));

  for (unsigned K = 0; K < N; ++K)
    EXPECT_EQ(R.AS.load<int32_t>(Buf + K * 4), K < 4 ? -1 : 99)
        << "element " << K;
}

TEST(GmaDeviceTest, Block2DAccess) {
  // Copies row 2 of a 2-D surface to row 0 via ldblk/stblk.
  Rig R;
  constexpr unsigned W = 16, H = 4;
  mem::VirtAddr Img = R.alloc(W * H * 4);
  for (unsigned Y = 0; Y < H; ++Y)
    for (unsigned X = 0; X < W; ++X)
      R.AS.store<int32_t>(Img + (Y * W + X) * 4,
                          static_cast<int32_t>(Y * 100 + X));

  xasm::SymbolBindings Binds;
  Binds.bindSurface("img", 0);
  uint32_t Kid = R.loadKernel(R"(
    mov.1.dw vr0 = 0
    mov.1.dw vr1 = 2
    ldblk.16.dw [vr8..vr23] = (img, vr0, vr1)
    mov.1.dw vr2 = 0
    stblk.16.dw (img, vr0, vr2) = [vr8..vr23]
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Img, W, H, isa::ElemType::I32,
                       SurfaceMode::InputOutput, mem::GpuMemType::Cached});
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(D));
  ASSERT_TRUE(static_cast<bool>(R.Device.run(0.0)));

  for (unsigned X = 0; X < W; ++X)
    EXPECT_EQ(R.AS.load<int32_t>(Img + X * 4), static_cast<int32_t>(200 + X));
}

TEST(GmaDeviceTest, SamplerBilinear) {
  // A 2x2 RGBA8 image; sampling at the centre averages all four texels.
  Rig R;
  mem::VirtAddr Tex = R.alloc(4 * 4);
  auto Pack = [](unsigned Rc, unsigned G, unsigned B, unsigned A) {
    return static_cast<int32_t>(Rc | (G << 8) | (B << 16) | (A << 24));
  };
  R.AS.store<int32_t>(Tex + 0, Pack(0, 0, 0, 255));
  R.AS.store<int32_t>(Tex + 4, Pack(100, 0, 0, 255));
  R.AS.store<int32_t>(Tex + 8, Pack(0, 200, 0, 255));
  R.AS.store<int32_t>(Tex + 12, Pack(100, 200, 0, 255));

  xasm::SymbolBindings Binds;
  Binds.bindSurface("tex", 0);
  uint32_t Kid = R.loadKernel(R"(
    mov.1.f vr0 = 0.5
    mov.1.f vr1 = 0.5
    sample.4.f [vr8..vr11] = (tex, vr0, vr1)
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Tex, 2, 2, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = Surfaces;
  uint32_t Sid = R.Device.enqueueShred(std::move(D));
  (void)Sid;

  // Pause right before halt to inspect registers.
  R.Device.setStepHook([&](uint32_t, uint32_t, uint32_t Pc) {
    return Pc == 3 ? StepAction::Pause : StepAction::Continue;
  });
  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  ASSERT_EQ(*Exit, RunExit::Paused);

  auto Resident = R.Device.residentShreds();
  ASSERT_EQ(Resident.size(), 1u);
  ShredRegView *Regs = R.Device.shredRegs(Resident[0]);
  ASSERT_NE(Regs, nullptr);
  auto F32 = [&](unsigned Reg) {
    uint32_t Bits = Regs->readReg(Reg);
    float F;
    std::memcpy(&F, &Bits, 4);
    return F;
  };
  EXPECT_FLOAT_EQ(F32(8), 50.0f);   // R channel
  EXPECT_FLOAT_EQ(F32(9), 100.0f);  // G channel
  EXPECT_FLOAT_EQ(F32(10), 0.0f);   // B channel
  EXPECT_FLOAT_EQ(F32(11), 255.0f); // A channel
  EXPECT_EQ(R.Device.stats().SamplerOps, 1u);

  R.Device.setStepHook(nullptr);
  auto Exit2 = R.Device.resume();
  ASSERT_TRUE(static_cast<bool>(Exit2));
  EXPECT_EQ(*Exit2, RunExit::QueueDrained);
}

//===----------------------------------------------------------------------===//
// ATR / CEH behaviour
//===----------------------------------------------------------------------===//

TEST(GmaDeviceTest, TlbWarmupReducesProxyCalls) {
  Rig R;
  constexpr unsigned N = 1024; // one 4 KiB page of data
  mem::VirtAddr Buf = R.alloc(N * 4);

  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("buf", 0);
  uint32_t Kid = R.loadKernel(R"(
    shl.1.dw vr1 = i, 3
    ld.8.dw [vr2..vr9] = (buf, vr1, 0)
    add.8.dw [vr2..vr9] = [vr2..vr9], 1
    st.8.dw (buf, vr1, 0) = [vr2..vr9]
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Buf, N, 1, isa::ElemType::I32,
                       SurfaceMode::InputOutput, mem::GpuMemType::Cached});
  for (unsigned I = 0; I < N / 8; ++I) {
    ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {static_cast<int32_t>(I)};
    D.Surfaces = Surfaces;
    R.Device.enqueueShred(std::move(D));
  }
  ASSERT_TRUE(static_cast<bool>(R.Device.run(0.0)));

  // 128 shreds touch one page of data: after each EU's TLB warms up, the
  // remaining shreds on that EU hit. Misses should be far below one per
  // shred (at most ~2 pages per EU).
  EXPECT_LE(R.Device.stats().TlbMisses, 2u * 8u);
  EXPECT_GT(R.Device.stats().TlbMisses, 0u);
}

TEST(GmaDeviceTest, CehEmulatesF64Add) {
  Rig R;
  mem::VirtAddr Buf = R.alloc(4 * 8);
  // Two f64 inputs at elements 0 and 1; result goes to element 2.
  double A = 1.25, B = 2.5;
  R.AS.write(Buf, &A, 8);
  R.AS.write(Buf + 8, &B, 8);

  xasm::SymbolBindings Binds;
  Binds.bindSurface("buf", 0);
  uint32_t Kid = R.loadKernel(R"(
    mov.1.dw vr30 = 0
    mov.1.dw vr31 = 1
    mov.1.dw vr32 = 2
    ld.1.df [vr0..vr1] = (buf, vr30, 0)
    ld.1.df [vr2..vr3] = (buf, vr31, 0)
    add.1.df [vr4..vr5] = [vr0..vr1], [vr2..vr3]
    st.1.df (buf, vr32, 0) = [vr4..vr5]
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Buf, 4, 1, isa::ElemType::F64,
                       SurfaceMode::InputOutput, mem::GpuMemType::Cached});
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(D));

  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_EQ(R.Proxy.Exceptions, 1u);
  EXPECT_EQ(R.Device.stats().ExceptionsHandled, 1u);

  double Result = 0;
  R.AS.read(Buf + 16, &Result, 8);
  EXPECT_DOUBLE_EQ(Result, 3.75);
}

TEST(GmaDeviceTest, DivideByZeroFaultsWithoutHandler) {
  Rig R;
  xasm::SymbolBindings Binds;
  uint32_t Kid = R.loadKernel(R"(
    mov.1.dw vr0 = 10
    mov.1.dw vr1 = 0
    div.1.dw vr2 = vr0, vr1
    halt
  )",
                              Binds);
  ShredDescriptor D;
  D.KernelId = Kid;
  R.Device.enqueueShred(std::move(D));

  auto Exit = R.Device.run(0.0);
  ASSERT_FALSE(static_cast<bool>(Exit));
  EXPECT_NE(Exit.message().find("divide-by-zero"), std::string::npos)
      << Exit.message();
  EXPECT_EQ(R.Proxy.LastKind, ExceptionKind::DivideByZero);
}

TEST(GmaDeviceTest, SurfaceBoundsViolationFaults) {
  Rig R;
  mem::VirtAddr Buf = R.alloc(8 * 4);
  xasm::SymbolBindings Binds;
  Binds.bindSurface("buf", 0);
  uint32_t Kid = R.loadKernel(R"(
    mov.1.dw vr0 = 6
    ld.8.dw [vr1..vr8] = (buf, vr0, 0)  ; elements 6..13 of an 8-elem surface
    halt
  )",
                              Binds);
  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Buf, 8, 1, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(D));

  auto Exit = R.Device.run(0.0);
  ASSERT_FALSE(static_cast<bool>(Exit));
  EXPECT_NE(Exit.message().find("surface-bounds"), std::string::npos);
}

TEST(GmaDeviceTest, UnboundSurfaceFaults) {
  Rig R;
  xasm::SymbolBindings Binds;
  Binds.bindSurface("buf", 3); // slot 3 never bound
  uint32_t Kid = R.loadKernel("  mov.1.dw vr0 = 0\n"
                              "  ld.1.dw vr1 = (buf, vr0, 0)\n"
                              "  halt\n",
                              Binds);
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = std::make_shared<SurfaceTable>();
  R.Device.enqueueShred(std::move(D));
  auto Exit = R.Device.run(0.0);
  ASSERT_FALSE(static_cast<bool>(Exit));
  EXPECT_NE(Exit.message().find("invalid-surface"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Inter-shred communication
//===----------------------------------------------------------------------===//

TEST(GmaDeviceTest, XmitWaitProducerConsumer) {
  Rig R;
  mem::VirtAddr Out = R.alloc(4);

  // Shred params: vr0 = role (0 producer, 1 consumer), vr1 = peer shred id.
  xasm::SymbolBindings Binds;
  Binds.bindScalar("role", 0);
  Binds.bindScalar("peer", 1);
  Binds.bindSurface("out", 0);
  uint32_t Kid = R.loadKernel(R"(
    cmp.eq.1.dw p1 = role, 0
    br !p1, consumer
    ; producer: send 777 into the consumer's vr10
    xmit peer, vr10 = 777
    halt
  consumer:
    wait vr10
    mov.1.dw vr20 = 0
    st.1.dw (out, vr20, 0) = vr10
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Out, 1, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});

  // Enqueue consumer first so it blocks in wait; shred ids are assigned in
  // enqueue order (1 = consumer, 2 = producer).
  ShredDescriptor Consumer;
  Consumer.KernelId = Kid;
  Consumer.Params = {1, 0};
  Consumer.Surfaces = Surfaces;
  uint32_t ConsumerId = R.Device.enqueueShred(std::move(Consumer));

  ShredDescriptor Producer;
  Producer.KernelId = Kid;
  Producer.Params = {0, static_cast<int32_t>(ConsumerId)};
  Producer.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(Producer));

  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_EQ(R.AS.load<int32_t>(Out), 777);
}

TEST(GmaDeviceTest, WaitDeadlockDetected) {
  Rig R;
  xasm::SymbolBindings Binds;
  uint32_t Kid = R.loadKernel("  wait vr5\n  halt\n", Binds);
  ShredDescriptor D;
  D.KernelId = Kid;
  R.Device.enqueueShred(std::move(D));
  auto Exit = R.Device.run(0.0);
  ASSERT_FALSE(static_cast<bool>(Exit));
  EXPECT_NE(Exit.message().find("deadlock"), std::string::npos);
}

TEST(GmaDeviceTest, SpawnEnqueuesChildren) {
  Rig R;
  mem::VirtAddr Out = R.alloc(16 * 4);

  // Root shred (param 100) spawns 4 children with params 0..3; every
  // child writes its param to out[param].
  xasm::SymbolBindings Binds;
  Binds.bindScalar("p", 0);
  Binds.bindSurface("out", 0);
  uint32_t Kid = R.loadKernel(R"(
    cmp.lt.1.dw p1 = p, 100
    br p1, child
    mov.1.dw vr1 = 0
  spawnloop:
    spawn vr1
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p2 = vr1, 4
    br p2, spawnloop
    halt
  child:
    mov.1.dw vr2 = 1000
    st.1.dw (out, p, 0) = vr2
    halt
  )",
                              Binds);

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Out, 16, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});
  ShredDescriptor D;
  D.KernelId = Kid;
  D.Params = {100};
  D.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(D));

  ASSERT_TRUE(static_cast<bool>(R.Device.run(0.0)));
  EXPECT_EQ(R.Device.stats().ShredsExecuted, 5u);
  for (unsigned K = 0; K < 4; ++K)
    EXPECT_EQ(R.AS.load<int32_t>(Out + K * 4), 1000);
}

//===----------------------------------------------------------------------===//
// Timing properties
//===----------------------------------------------------------------------===//

namespace {

/// Runs a bandwidth-light compute kernel over \p Config and returns the
/// elapsed simulated time.
double runComputeWorkload(const GmaConfig &Config, unsigned NumShreds) {
  Rig R(Config);
  xasm::SymbolBindings Binds;
  uint32_t Kid = R.loadKernel(R"(
    mov.1.dw vr0 = 0
  loop:
    mul.8.dw [vr8..vr15] = [vr8..vr15], 3
    add.1.dw vr0 = vr0, 1
    cmp.lt.1.dw p1 = vr0, 50
    br p1, loop
    halt
  )",
                              Binds);
  for (unsigned K = 0; K < NumShreds; ++K) {
    ShredDescriptor D;
    D.KernelId = Kid;
    R.Device.enqueueShred(std::move(D));
  }
  auto Exit = R.Device.run(0.0);
  EXPECT_TRUE(static_cast<bool>(Exit));
  return R.Device.stats().elapsedNs();
}

} // namespace

TEST(GmaTimingTest, MoreEusNeverSlower) {
  GmaConfig Small;
  Small.NumEus = 2;
  GmaConfig Big;
  Big.NumEus = 8;
  double TSmall = runComputeWorkload(Small, 64);
  double TBig = runComputeWorkload(Big, 64);
  EXPECT_LE(TBig, TSmall * 1.0001);
  EXPECT_LT(TBig, TSmall * 0.5); // 4x the EUs: expect substantial speedup
}

TEST(GmaTimingTest, MultithreadingHidesMemoryStalls) {
  // A memory-heavy kernel: with 4 contexts per EU the device should
  // finish faster than with 1 context per EU.
  auto Run = [](unsigned ThreadsPerEu) {
    GmaConfig Config;
    Config.NumEus = 1;
    Config.ThreadsPerEu = ThreadsPerEu;
    Rig R(Config);
    constexpr unsigned N = 4096;
    mem::VirtAddr Buf = R.alloc(N * 4);
    xasm::SymbolBindings Binds;
    Binds.bindScalar("i", 0);
    Binds.bindSurface("buf", 0);
    uint32_t Kid = R.loadKernel(R"(
      shl.1.dw vr1 = i, 3
      ld.8.dw [vr2..vr9] = (buf, vr1, 0)
      mul.8.dw [vr2..vr9] = [vr2..vr9], 7
      add.8.dw [vr2..vr9] = [vr2..vr9], 3
      mul.8.dw [vr2..vr9] = [vr2..vr9], 5
      st.8.dw (buf, vr1, 0) = [vr2..vr9]
      halt
    )",
                                Binds);
    auto Surfaces = std::make_shared<SurfaceTable>();
    Surfaces->push_back({Buf, N, 1, isa::ElemType::I32,
                         SurfaceMode::InputOutput, mem::GpuMemType::Cached});
    for (unsigned K = 0; K < N / 8; ++K) {
      ShredDescriptor D;
      D.KernelId = Kid;
      D.Params = {static_cast<int32_t>(K)};
      D.Surfaces = Surfaces;
      R.Device.enqueueShred(std::move(D));
    }
    EXPECT_TRUE(static_cast<bool>(R.Device.run(0.0)));
    return R.Device.stats().elapsedNs();
  };

  double T1 = Run(1), T4 = Run(4);
  EXPECT_LT(T4, T1); // switch-on-stall must recover some stall time
}

TEST(GmaTimingTest, StatsAccumulateSanely) {
  Rig R;
  xasm::SymbolBindings Binds;
  uint32_t Kid = R.loadKernel("  nop\n  nop\n  halt\n", Binds);
  for (unsigned K = 0; K < 10; ++K) {
    ShredDescriptor D;
    D.KernelId = Kid;
    R.Device.enqueueShred(std::move(D));
  }
  ASSERT_TRUE(static_cast<bool>(R.Device.run(100.0)));
  const GmaRunStats &S = R.Device.stats();
  EXPECT_EQ(S.ShredsExecuted, 10u);
  EXPECT_EQ(S.Instructions, 30u);
  EXPECT_EQ(S.StartNs, 100.0);
  EXPECT_GT(S.FinishNs, 100.0);
}

TEST(GmaDeviceTest, ManyMoreShredsThanContexts) {
  Rig R;
  mem::VirtAddr Out = R.alloc(4096 * 4);
  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("out", 0);
  uint32_t Kid = R.loadKernel("  st.1.dw (out, i, 0) = i\n  halt\n", Binds);
  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({Out, 4096, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});
  constexpr unsigned NumShreds = 1000; // >> 32 contexts
  for (unsigned K = 0; K < NumShreds; ++K) {
    ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {static_cast<int32_t>(K)};
    D.Surfaces = Surfaces;
    R.Device.enqueueShred(std::move(D));
  }
  ASSERT_TRUE(static_cast<bool>(R.Device.run(0.0)));
  EXPECT_EQ(R.Device.stats().ShredsExecuted, NumShreds);
  for (unsigned K = 0; K < NumShreds; ++K)
    EXPECT_EQ(R.AS.load<int32_t>(Out + K * 4), static_cast<int32_t>(K));
}

TEST(GmaTimingTest, SharedSamplerSerializesRequests) {
  // Many concurrent sampling shreds: with a lower shared-sampler
  // throughput the run must take longer (requests queue at the fixed
  // function), with everything else equal.
  auto Run = [](double SamplesPerNs) {
    GmaConfig Config;
    Config.SamplerThroughputPerNs = SamplesPerNs;
    Rig R(Config);
    mem::VirtAddr Tex = R.alloc(64 * 4);
    xasm::SymbolBindings Binds;
    Binds.bindSurface("tex", 0);
    uint32_t Kid = R.loadKernel(R"(
      mov.1.dw vr20 = 0
      mov.1.f vr0 = 1.5
      mov.1.f vr1 = 0.5
    sloop:
      sample.4.f [vr8..vr11] = (tex, vr0, vr1)
      add.1.dw vr20 = vr20, 1
      cmp.lt.1.dw p1 = vr20, 32
      br p1, sloop
      halt
    )",
                                Binds);
    auto Surfaces = std::make_shared<SurfaceTable>();
    Surfaces->push_back({Tex, 8, 8, isa::ElemType::I32, SurfaceMode::Input,
                         mem::GpuMemType::Cached});
    for (unsigned K = 0; K < 32; ++K) {
      ShredDescriptor D;
      D.KernelId = Kid;
      D.Surfaces = Surfaces;
      R.Device.enqueueShred(std::move(D));
    }
    EXPECT_TRUE(static_cast<bool>(R.Device.run(0.0)));
    return R.Device.stats().elapsedNs();
  };
  double Fast = Run(2.0);
  double Slow = Run(0.05);
  EXPECT_GT(Slow, Fast * 1.5);
}
