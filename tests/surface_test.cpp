//===- tests/surface_test.cpp - Surface, HostImage, and generator tests -------===//

#include "kernels/Surface.h"
#include "kernels/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace exochi;
using namespace exochi::kernels;

TEST(SurfaceGeometryTest, ElementIndexing) {
  SurfaceGeometry G{100, 50, 3, 8, 2};
  EXPECT_EQ(G.surfW(), 116u);
  EXPECT_EQ(G.slotH(), 54u);
  EXPECT_EQ(G.surfH(), 162u);
  EXPECT_EQ(G.elements(), 116ull * 162);
  EXPECT_EQ(G.bytes(), 116ull * 162 * 4);

  // Pixel (0,0) of frame 0 sits after the padding ring.
  EXPECT_EQ(G.elem(0, 0, 0), 2ull * 116 + 8);
  // Frame 1 starts one slot lower.
  EXPECT_EQ(G.elem(0, 0, 1), (54ull + 2) * 116 + 8);
  EXPECT_EQ(G.absRow(0, 1), 56u);
  // Moving one pixel right/down moves one element / one row.
  EXPECT_EQ(G.elem(1, 0, 0), G.elem(0, 0, 0) + 1);
  EXPECT_EQ(G.elem(0, 1, 0), G.elem(0, 0, 0) + 116);
}

TEST(PackRgbaTest, ChannelsRoundTrip) {
  uint32_t P = packRgba(12, 34, 56, 78);
  EXPECT_EQ(chR(P), 12u);
  EXPECT_EQ(chG(P), 34u);
  EXPECT_EQ(chB(P), 56u);
  EXPECT_EQ(chA(P), 78u);
  EXPECT_EQ(packRgba(255, 255, 255, 255), 0xffffffffu);
  EXPECT_EQ(packRgba(256, 0, 0, 0), 0u); // masked to a byte
}

TEST(HostImageTest, PaddingReplicatesEdges) {
  SurfaceGeometry G{16, 8, 2, 8, 2};
  HostImage Img(G);
  for (uint32_t F = 0; F < G.Frames; ++F)
    for (uint32_t Y = 0; Y < G.H; ++Y)
      for (uint32_t X = 0; X < G.W; ++X)
        Img.at(X, Y, F) = packRgba(X, Y, F, 255);
  Img.fillPadding();

  for (uint32_t F = 0; F < G.Frames; ++F) {
    // Left padding replicates column 0; right padding the last column.
    EXPECT_EQ(Img.raw(G.elem(0, 3, F) - 1), Img.at(0, 3, F));
    EXPECT_EQ(Img.raw(G.elem(0, 3, F) - G.PadX), Img.at(0, 3, F));
    EXPECT_EQ(Img.raw(G.elem(G.W - 1, 3, F) + 1), Img.at(G.W - 1, 3, F));
    // Top padding replicates row 0 (including the corner columns).
    EXPECT_EQ(Img.raw(G.elem(5, 0, F) - G.surfW()), Img.at(5, 0, F));
    EXPECT_EQ(Img.raw(G.elem(5, 0, F) - 2ull * G.surfW()), Img.at(5, 0, F));
    // Bottom padding replicates the last row.
    EXPECT_EQ(Img.raw(G.elem(5, G.H - 1, F) + G.surfW()),
              Img.at(5, G.H - 1, F));
    // Corner: top-left padding equals pixel (0,0).
    EXPECT_EQ(Img.raw(G.elem(0, 0, F) - G.surfW() - 1), Img.at(0, 0, F));
  }
}

TEST(HostImageTest, SharedRoundTripAndRects) {
  exo::ExoPlatform P;
  SurfaceGeometry G{24, 12, 2, 8, 2};
  SharedSurface S = SharedSurface::allocate(P, G, "t");

  HostImage A(G);
  for (uint32_t F = 0; F < G.Frames; ++F)
    for (uint32_t Y = 0; Y < G.H; ++Y)
      for (uint32_t X = 0; X < G.W; ++X)
        A.at(X, Y, F) = packRgba(X * 3, Y * 5, F * 7, 9);
  A.writeToShared(P, S);

  HostImage B(G);
  B.readFromShared(P, S);
  uint64_t Diff = 0;
  EXPECT_TRUE(A.visibleEquals(B, &Diff));

  // Rect update: only the chosen window changes in shared memory.
  HostImage C(G);
  for (uint32_t Y = 2; Y < 6; ++Y)
    for (uint32_t X = 4; X < 12; ++X)
      C.at(X, Y, 1) = 0xdeadbeef;
  C.writeRectToShared(P, S, 1, 4, 12, 2, 6);
  B.readFromShared(P, S);
  EXPECT_EQ(B.at(4, 2, 1), 0xdeadbeefu);
  EXPECT_EQ(B.at(11, 5, 1), 0xdeadbeefu);
  EXPECT_EQ(B.at(3, 2, 1), A.at(3, 2, 1));  // outside the rect: unchanged
  EXPECT_EQ(B.at(4, 6, 1), A.at(4, 6, 1));
  EXPECT_EQ(B.at(4, 2, 0), A.at(4, 2, 0));  // other frame untouched

  // Row update helper.
  HostImage D(G);
  for (uint32_t X = 0; X < G.W; ++X)
    D.at(X, 7, 0) = 0x01020304;
  D.writeRowsToShared(P, S, 0, 7, 8);
  B.readFromShared(P, S);
  EXPECT_EQ(B.at(0, 7, 0), 0x01020304u);
  EXPECT_EQ(B.at(G.W - 1, 7, 0), 0x01020304u);
  EXPECT_EQ(B.at(0, 6, 0), A.at(0, 6, 0));
}

TEST(HostImageTest, VisibleEqualsIgnoresPadding) {
  SurfaceGeometry G{16, 8, 1, 8, 2};
  HostImage A(G), B(G);
  for (uint32_t Y = 0; Y < G.H; ++Y)
    for (uint32_t X = 0; X < G.W; ++X)
      A.at(X, Y) = B.at(X, Y) = X + Y;
  // Divergent padding must not matter.
  A.raw(0) = 111;
  B.raw(0) = 222;
  EXPECT_TRUE(A.visibleEquals(B, nullptr));

  B.at(5, 3) = 999;
  uint64_t Diff = 0;
  EXPECT_FALSE(A.visibleEquals(B, &Diff));
  EXPECT_EQ(Diff, G.elem(5, 3));
}

//===----------------------------------------------------------------------===//
// Content generators
//===----------------------------------------------------------------------===//

TEST(GeneratorTest, NaturalImageIsDeterministicAndNonTrivial) {
  SurfaceGeometry G{64, 48, 1, 8, 2};
  HostImage A(G), B(G);
  gen::naturalImage(A, 42);
  gen::naturalImage(B, 42);
  uint64_t Diff = 0;
  EXPECT_TRUE(A.visibleEquals(B, &Diff));

  // Different seeds differ; content has spatial variation.
  HostImage C(G);
  gen::naturalImage(C, 43);
  EXPECT_FALSE(A.visibleEquals(C, &Diff));
  std::set<uint32_t> Distinct;
  for (uint32_t Y = 0; Y < G.H; ++Y)
    Distinct.insert(A.at(7, Y));
  EXPECT_GT(Distinct.size(), 8u);
}

TEST(GeneratorTest, MovingVideoHasMotionAndStaticRegions) {
  SurfaceGeometry G{64, 48, 4, 8, 2};
  HostImage V(G);
  gen::movingVideo(V, 7);

  // The panning region changes between frames; count differing pixels in
  // the lower three quarters vs the static top quarter.
  uint64_t MovingDiff = 0, StaticDiff = 0;
  for (uint32_t Y = 0; Y < G.H; ++Y)
    for (uint32_t X = 0; X < G.W; ++X) {
      bool Same = V.at(X, Y, 1) == V.at(X, Y, 2);
      if (Y < G.H / 4)
        StaticDiff += Same ? 0 : 1;
      else
        MovingDiff += Same ? 0 : 1;
    }
  EXPECT_GT(MovingDiff, static_cast<uint64_t>(G.W) * G.H / 4);
  // The static strip still carries per-frame noise, but far less change.
  EXPECT_LT(StaticDiff * 2, MovingDiff);
}

TEST(GeneratorTest, TelecinedVideoRepeatsFramesInCadence) {
  SurfaceGeometry G{48, 32, 20, 8, 2};
  HostImage V(G);
  gen::telecinedVideo(V, 3);

  // Per-frame SAD against the previous frame: the 2-3 cadence shows as
  // zero-SAD repeats.
  std::vector<uint64_t> Sads(G.Frames, 0);
  for (uint32_t F = 1; F < G.Frames; ++F)
    for (uint32_t Y = 0; Y < G.H; ++Y)
      for (uint32_t X = 0; X < G.W; ++X) {
        int32_t D = static_cast<int32_t>(chG(V.at(X, Y, F))) -
                    static_cast<int32_t>(chG(V.at(X, Y, F - 1)));
        Sads[F] += static_cast<uint64_t>(D < 0 ? -D : D);
      }
  unsigned Zero = 0, NonZero = 0;
  for (uint32_t F = 1; F < G.Frames; ++F)
    (Sads[F] == 0 ? Zero : NonZero) += 1;
  // AABBB: 3 of every 5 transitions are repeats.
  EXPECT_NEAR(static_cast<double>(Zero) / (Zero + NonZero), 0.6, 0.15);
  EXPECT_TRUE(detectPulldownCadence(Sads));
}

TEST(GeneratorTest, LogoHasRadialAlphaRamp) {
  SurfaceGeometry G{64, 32, 1, 0, 0};
  HostImage L(G);
  gen::logoImage(L, 1);
  // Centre is opaque-ish, corners transparent.
  EXPECT_GT(chA(L.at(32, 16)), 200u);
  EXPECT_LT(chA(L.at(0, 0)), 40u);
  EXPECT_LT(chA(L.at(63, 31)), 40u);
}
