//===- tests/netchaos_test.cpp - NetChaos resilience tests --------------------===//
//
// NetChaos (DESIGN.md §17): deterministic seeded wire-fault injection
// plus end-to-end exactly-once retry semantics across the ExoNet path.
// Covers the NetFault schedule (seed replay, kind filters, fire caps),
// the typed socket send-timeout, the client's transport/protocol/server
// error taxonomy, wire-level deadline propagation, dedup-cache replay
// under dropped and truncated Results, cache eviction as the
// exactly-once window, duplicate-Result suppression, resumable-session
// reconnect across a drain, and the 8-seed chaos soak replayed
// bit-identically at SimThreads {1,4} x devices {1,2}.
//
//===----------------------------------------------------------------------===//

#include "net/NetClient.h"
#include "net/NetServer.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace exochi;
using namespace exochi::net;

namespace {

constexpr const char *VecAddAsm = R"(
  shl.1.dw vr1 = i, 3
  ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
  ld.8.dw  [vr10..vr17] = (B, vr1, 0)
  add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw  (C, vr1, 0)  = [vr18..vr25]
  halt
)";

/// C += A: deliberately non-idempotent, so a job that executes twice
/// corrupts the surface — the exactly-once proofs hinge on it.
constexpr const char *AccumAsm = R"(
  shl.1.dw vr1 = i, 3
  ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
  ld.8.dw  [vr10..vr17] = (C, vr1, 0)
  add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw  (C, vr1, 0)  = [vr18..vr25]
  halt
)";

/// Platform + runtime (vecadd and the accumulating kernel) + a NetServer
/// loop on a background thread, parameterized over device count for the
/// chaos soak's replay matrix.
struct ChaosRig {
  exo::ExoPlatform Platform;
  chi::Runtime RT;
  std::unique_ptr<NetServer> Server;
  std::thread Loop;
  uint16_t Port = 0;

  static exo::PlatformConfig configFor(unsigned Devices) {
    exo::PlatformConfig C;
    C.NumDevices = Devices;
    return C;
  }

  explicit ChaosRig(NetServerConfig NC = {}, unsigned SimThreads = 1,
                    unsigned Devices = 1)
      : Platform(configFor(Devices)), RT(Platform) {
    Platform.setSimThreads(SimThreads);
    chi::ProgramBuilder PB;
    cantFail(PB.addXgmaKernel("vecadd", VecAddAsm, {"i"}, {"A", "B", "C"})
                 .takeError());
    cantFail(
        PB.addXgmaKernel("accum", AccumAsm, {"i"}, {"A", "C"}).takeError());
    cantFail(RT.loadBinary(PB.take()));
    Server = std::make_unique<NetServer>(RT, NC);
    Port = cantFail(Server->listenTcp(0));
    Loop = std::thread([this] { Server->run(); });
  }

  void shutdown() {
    if (!Loop.joinable())
      return;
    Server->stop();
    Loop.join();
  }

  /// Stats snapshot via a StatsReq round-trip: the loop thread computes
  /// the JSON, so polling this while the loop runs is race-free. Raw
  /// netStats()/stats() reads are only safe after shutdown().
  std::string statsJsonViaWire() {
    auto C = NetClient::connectTcp("127.0.0.1", Port, 10.0);
    if (!C)
      return "";
    auto S = C->stats();
    return S ? *S : "";
  }

  /// Polls statsJsonViaWire() until \p Needle appears (~1 s cap).
  bool awaitStatsContain(const std::string &Needle) {
    for (unsigned I = 0; I < 200; ++I) {
      if (statsJsonViaWire().find(Needle) != std::string::npos)
        return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  ~ChaosRig() { shutdown(); }
};

std::vector<uint8_t> surfaceWords(unsigned N, int32_t (*Fn)(unsigned)) {
  std::vector<uint8_t> Out;
  Out.reserve(N * 4);
  for (unsigned K = 0; K < N; ++K) {
    uint32_t V = static_cast<uint32_t>(Fn(K));
    for (int B = 0; B < 4; ++B)
      Out.push_back(static_cast<uint8_t>(V >> (B * 8)));
  }
  return Out;
}

int32_t wordAt(const std::vector<uint8_t> &Data, unsigned K) {
  uint32_t V = 0;
  for (int B = 0; B < 4; ++B)
    V |= static_cast<uint32_t>(Data[K * 4 + B]) << (B * 8);
  return static_cast<int32_t>(V);
}

void declareVecAddSurfaces(NetClient &C, unsigned N = 64) {
  wire::SurfaceMsg A;
  A.Name = "A";
  A.Width = N;
  A.Mode = 0;
  A.Fill = wire::SurfaceFill::Data;
  A.Data = surfaceWords(N, [](unsigned K) { return static_cast<int32_t>(K); });
  ASSERT_FALSE(static_cast<bool>(C.surface(A)));
  wire::SurfaceMsg B = A;
  B.Name = "B";
  B.Data =
      surfaceWords(N, [](unsigned K) { return static_cast<int32_t>(K * 10); });
  ASSERT_FALSE(static_cast<bool>(C.surface(B)));
  wire::SurfaceMsg Out;
  Out.Name = "C";
  Out.Width = N;
  Out.Mode = 1;
  Out.Fill = wire::SurfaceFill::Zero;
  ASSERT_FALSE(static_cast<bool>(C.surface(Out)));
}

/// A[k] = k (input), C zeroed (inout — the accumulator).
void declareAccumSurfaces(NetClient &C, unsigned N = 64) {
  wire::SurfaceMsg A;
  A.Name = "A";
  A.Width = N;
  A.Mode = 0;
  A.Fill = wire::SurfaceFill::Data;
  A.Data = surfaceWords(N, [](unsigned K) { return static_cast<int32_t>(K); });
  ASSERT_FALSE(static_cast<bool>(C.surface(A)));
  wire::SurfaceMsg Acc;
  Acc.Name = "C";
  Acc.Width = N;
  Acc.Mode = 2;
  Acc.Fill = wire::SurfaceFill::Zero;
  ASSERT_FALSE(static_cast<bool>(C.surface(Acc)));
}

wire::SubmitMsg vecAddSubmit(uint64_t Tag, uint32_t Shreds = 8,
                             uint8_t Flags = 0) {
  wire::SubmitMsg M;
  M.Tag = Tag;
  M.Flags = Flags;
  M.Shreds = Shreds;
  M.Kernel = "vecadd";
  M.Params = {{"i", wire::ParamKind::Shred, 0}};
  M.Bind = {"A", "B", "C"};
  return M;
}

wire::SubmitMsg accumSubmit(uint64_t Tag) {
  wire::SubmitMsg M;
  M.Tag = Tag;
  M.Shreds = 8;
  M.Kernel = "accum";
  M.Params = {{"i", wire::ParamKind::Shred, 0}};
  M.Bind = {"A", "C"};
  return M;
}

/// Fetches surface "C" and asserts element K == Scale*K over [0, N).
void expectScaledC(NetClient &C, int32_t Scale, unsigned N = 64) {
  auto D = C.fetch("C");
  ASSERT_TRUE(static_cast<bool>(D)) << D.message();
  ASSERT_EQ(D->Data.size(), N * 4u);
  for (unsigned K = 0; K < N; ++K)
    ASSERT_EQ(wordAt(D->Data, K), Scale * static_cast<int32_t>(K))
        << "element " << K;
}

/// A hand-rolled peer speaking raw frames, for exercising the client's
/// error taxonomy without a real server.
struct FakeServer {
  uint16_t Port = 0;
  std::thread T;

  explicit FakeServer(std::function<void(Socket &)> Fn) {
    auto L = std::make_shared<Socket>(cantFail(tcpListen(0, Port)));
    T = std::thread([L, Fn = std::move(Fn)] {
      auto S = acceptOne(*L);
      if (S)
        Fn(*S);
    });
  }

  ~FakeServer() {
    if (T.joinable())
      T.join();
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// NetFault: the seeded deterministic schedule
//===----------------------------------------------------------------------===//

TEST(NetFaultTest, SameSeedReplaysTheSameSchedule) {
  auto Probe = [](NetFault &F) {
    for (unsigned Round = 0; Round < 200; ++Round)
      for (uint64_t Stream : {1u, 2u, 7u}) {
        (void)F.decide(Stream, wire::MsgType::Submit);
        (void)F.decide(Stream, wire::MsgType::Result);
      }
  };
  NetFault A = cantFail(NetFault::parse("drop:0.2,dup:0.1", 42));
  NetFault B = cantFail(NetFault::parse("drop:0.2,dup:0.1", 42));
  Probe(A);
  Probe(B);
  EXPECT_FALSE(A.fired().empty());
  EXPECT_EQ(A.firedSorted(), B.firedSorted());

  // A different seed yields a different schedule.
  NetFault C = cantFail(NetFault::parse("drop:0.2,dup:0.1", 43));
  Probe(C);
  EXPECT_NE(A.firedSorted(), C.firedSorted());

  // reset() replays from the top.
  A.reset();
  EXPECT_TRUE(A.fired().empty());
  Probe(A);
  EXPECT_EQ(A.firedSorted(), B.firedSorted());
}

TEST(NetFaultTest, DisarmedInjectorNeverFires) {
  NetFault F(99);
  EXPECT_FALSE(F.armed());
  for (unsigned I = 0; I < 100; ++I)
    EXPECT_FALSE(F.decide(1, wire::MsgType::Result).has_value());
  EXPECT_TRUE(F.fired().empty());
}

TEST(NetFaultTest, OnlyFilterAndMaxFiresBoundTheSchedule) {
  NetFault F(7);
  F.setRate(NetFaultKind::Drop, 1.0);
  F.setOnly(NetFaultKind::Drop, wire::MsgType::Result);
  EXPECT_FALSE(F.decide(1, wire::MsgType::Submit).has_value());
  ASSERT_TRUE(F.decide(1, wire::MsgType::Result).has_value());

  F.setMaxFires(2);
  ASSERT_TRUE(F.decide(1, wire::MsgType::Result).has_value());
  // The cap: probes keep advancing the schedule but nothing fires.
  for (unsigned I = 0; I < 10; ++I)
    EXPECT_FALSE(F.decide(1, wire::MsgType::Result).has_value());
  EXPECT_EQ(F.fired().size(), 2u);
}

TEST(NetFaultTest, ParseRejectsBadSpecs) {
  EXPECT_FALSE(static_cast<bool>(NetFault::parse("drop:0.5,stall:0.1")
                                     .takeError()));
  NetFault All = cantFail(NetFault::parse("all:0.25"));
  for (unsigned K = 0; K < NumNetFaultKinds; ++K)
    EXPECT_EQ(All.rate(static_cast<NetFaultKind>(K)), 0.25);

  EXPECT_TRUE(static_cast<bool>(NetFault::parse("bogus:0.5").takeError()));
  EXPECT_TRUE(static_cast<bool>(NetFault::parse("drop:1.5").takeError()));
  EXPECT_TRUE(static_cast<bool>(NetFault::parse("drop:nope").takeError()));
}

//===----------------------------------------------------------------------===//
// Socket send timeout (typed)
//===----------------------------------------------------------------------===//

TEST(SocketTimeoutTest, SendAllTimesOutTypedInsteadOfHanging) {
  uint16_t Port = 0;
  auto L = cantFail(tcpListen(0, Port));
  auto C = cantFail(tcpConnect("127.0.0.1", Port));
  auto S = cantFail(acceptOne(L)); // accepted but never read
  ASSERT_FALSE(static_cast<bool>(C.setSendTimeout(0.2)));

  // Push until the kernel buffers fill and SO_SNDTIMEO expires.
  std::vector<uint8_t> Chunk(8u << 20, 0xab);
  Error E = Error::success();
  for (unsigned I = 0; I < 8 && !E; ++I)
    E = C.sendAll(Chunk);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_TRUE(isTimeoutError(E)) << E.message();
  EXPECT_NE(E.message().find("SO_SNDTIMEO"), std::string::npos) << E.message();
  (void)S;
}

TEST(SocketTimeoutTest, PredicateIgnoresOtherErrors) {
  EXPECT_FALSE(isTimeoutError(Error::make("send failed: broken pipe")));
  EXPECT_FALSE(isTimeoutError(Error::success()));
}

//===----------------------------------------------------------------------===//
// Client error taxonomy: transport vs protocol vs server
//===----------------------------------------------------------------------===//

TEST(ErrKindTest, ServerThenProtocolErrorsAreNotRetryable) {
  // A peer that welcomes, then sends an Error frame, then raw garbage.
  FakeServer F([](Socket &S) {
    std::vector<uint8_t> Hello;
    std::string Err;
    (void)S.recvSome(Hello, 4096, Err);
    wire::WelcomeMsg W;
    W.ClientId = 7;
    (void)S.sendAll(wire::encode(W));
    (void)S.sendAll(wire::encode(wire::ErrorMsg{"boom"}));
    std::vector<uint8_t> Garbage(16, 0xee);
    (void)S.sendAll(Garbage);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  auto C = NetClient::connectTcp("127.0.0.1", F.Port, 2.0);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  EXPECT_EQ(C->clientId(), 7u);

  auto R1 = C->readResult();
  ASSERT_FALSE(static_cast<bool>(R1));
  EXPECT_EQ(C->lastErrorKind(), ErrKind::Server);
  EXPECT_NE(R1.message().find("boom"), std::string::npos);

  auto R2 = C->readResult();
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_EQ(C->lastErrorKind(), ErrKind::Protocol);
}

TEST(ErrKindTest, EofIsATransportError) {
  FakeServer F([](Socket &S) {
    std::vector<uint8_t> Hello;
    std::string Err;
    (void)S.recvSome(Hello, 4096, Err);
    wire::WelcomeMsg W;
    W.ClientId = 3;
    (void)S.sendAll(wire::encode(W));
    // Close immediately: the next client read sees a clean EOF.
  });
  auto C = NetClient::connectTcp("127.0.0.1", F.Port, 2.0);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  auto R = C->readResult();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(C->lastErrorKind(), ErrKind::Transport);
}

TEST(ErrKindTest, RecvTimeoutIsATransportErrorNotProtocol) {
  // The pre-NetChaos client collapsed timeouts and wire poison into one
  // error string; retry layers need them distinguishable.
  FakeServer F([](Socket &S) {
    std::vector<uint8_t> Hello;
    std::string Err;
    (void)S.recvSome(Hello, 4096, Err);
    wire::WelcomeMsg W;
    W.ClientId = 5;
    (void)S.sendAll(wire::encode(W));
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
  });
  auto C = NetClient::connectTcp("127.0.0.1", F.Port, 0.3);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  auto R = C->readResult();
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(C->lastErrorKind(), ErrKind::Transport);
  EXPECT_NE(R.message().find("timed out"), std::string::npos) << R.message();
}

//===----------------------------------------------------------------------===//
// Wire-level deadline propagation
//===----------------------------------------------------------------------===//

TEST(NetDeadlineTest, ExpiredAbsoluteDeadlineRejectedAtAdmission) {
  NetServerConfig NC;
  NC.Serve.WallClock = [] { return int64_t(1'000'000'000); };
  ChaosRig R(NC);
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 10.0);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);

  // Already expired at admission: rejected, never dispatched.
  wire::SubmitMsg Stale = vecAddSubmit(1);
  Stale.ExpiresAtUnixNs = 999'999'999;
  ASSERT_FALSE(static_cast<bool>(C->submit(Stale)));
  auto R1 = C->readResult();
  ASSERT_TRUE(static_cast<bool>(R1)) << R1.message();
  EXPECT_EQ(R1->State, static_cast<uint8_t>(serve::JobState::Rejected));
  EXPECT_EQ(R1->Reason,
            static_cast<uint8_t>(serve::RejectReason::DeadlineExpired));

  // Still-future deadline: runs normally.
  wire::SubmitMsg Fresh = vecAddSubmit(2);
  Fresh.ExpiresAtUnixNs = 2'000'000'000;
  ASSERT_FALSE(static_cast<bool>(C->submit(Fresh)));
  auto R2 = C->readResult();
  ASSERT_TRUE(static_cast<bool>(R2)) << R2.message();
  EXPECT_EQ(R2->State, static_cast<uint8_t>(serve::JobState::Completed));

  auto J = C->stats();
  ASSERT_TRUE(static_cast<bool>(J)) << J.message();
  EXPECT_NE(J->find("\"rejected_deadline_expired\": 1"), std::string::npos)
      << *J;
  (void)C->bye();
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().RejectedDeadlineExpired, 1u);
}

//===----------------------------------------------------------------------===//
// Exactly-once: dedup replay, eviction, duplicate suppression, resume
//===----------------------------------------------------------------------===//

TEST(ExactlyOnceTest, DroppedResultIsReplayedFromCacheNotReexecuted) {
  NetFault F(11);
  F.setRate(NetFaultKind::Drop, 1.0);
  F.setOnly(NetFaultKind::Drop, wire::MsgType::Result);
  F.setMaxFires(1); // eat exactly the first Result
  NetServerConfig NC;
  NC.Fault = &F;
  ChaosRig R(NC);

  NetClientConfig CC;
  CC.CallTimeoutSec = 0.4;
  CC.Retries = 3;
  CC.BackoffBaseMs = 1;
  CC.BackoffCapMs = 8;
  CC.SessionId = 7;
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, CC);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareAccumSurfaces(*C);

  ASSERT_FALSE(static_cast<bool>(C->submit(accumSubmit(1))));
  auto Res = C->readResult(); // times out, reconnects, resends, replays
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->Tag, 1u);
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
  EXPECT_EQ(Res->Replayed, 1u);
  EXPECT_GE(C->clientStats().Reconnects, 1u);
  EXPECT_GE(C->clientStats().Resubmits, 1u);

  expectScaledC(*C, 1); // ran exactly once
  (void)C->bye();
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().Admitted, 1u);
  EXPECT_EQ(R.Server->netStats().DedupReplays, 1u);
  EXPECT_GE(R.Server->netStats().RetrySubmits, 1u);
  EXPECT_EQ(R.Server->netStats().SessionsResumed, 1u);
  EXPECT_EQ(R.Server->netStats().FaultsInjected, 1u);
}

TEST(ExactlyOnceTest, TruncatedResultDisconnectReplaysFromCache) {
  // The satellite scenario: the connection dies *between* Submit and
  // Result (mid-frame, even) — the retry must replay, not re-execute.
  NetFault F(12);
  F.setRate(NetFaultKind::Truncate, 1.0);
  F.setOnly(NetFaultKind::Truncate, wire::MsgType::Result);
  F.setMaxFires(1);
  NetServerConfig NC;
  NC.Fault = &F;
  ChaosRig R(NC);

  NetClientConfig CC;
  CC.CallTimeoutSec = 2.0; // EOF arrives fast; the timeout is backstop
  CC.Retries = 3;
  CC.BackoffBaseMs = 1;
  CC.BackoffCapMs = 8;
  CC.SessionId = 8;
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, CC);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareAccumSurfaces(*C);

  ASSERT_FALSE(static_cast<bool>(C->submit(accumSubmit(1))));
  auto Res = C->readResult(); // partial frame + EOF -> reconnect -> replay
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
  EXPECT_EQ(Res->Replayed, 1u);

  expectScaledC(*C, 1);
  (void)C->bye();
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().Admitted, 1u);
  EXPECT_EQ(R.Server->netStats().DedupReplays, 1u);
}

TEST(ExactlyOnceTest, DedupCacheEvictionIsTheExactlyOnceWindow) {
  NetServerConfig NC;
  NC.DedupCacheCap = 4;
  ChaosRig R(NC);
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 10.0);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareAccumSurfaces(*C);

  for (uint64_t Tag = 0; Tag < 8; ++Tag) {
    ASSERT_FALSE(static_cast<bool>(C->submit(accumSubmit(Tag))));
    auto Res = C->readResult();
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
  }
  expectScaledC(*C, 8);

  // Tag 7 is still cached: its retry replays.
  wire::SubmitMsg Retry7 = accumSubmit(7);
  Retry7.Attempt = 1;
  ASSERT_FALSE(static_cast<bool>(C->submit(Retry7)));
  auto Rep = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Rep)) << Rep.message();
  EXPECT_EQ(Rep->Replayed, 1u);
  expectScaledC(*C, 8); // did not re-execute

  // Tag 0 was evicted by the FIFO bound: its retry is
  // indistinguishable from a new job and re-executes (at-most-once
  // only inside the window — documented, counted).
  wire::SubmitMsg Retry0 = accumSubmit(0);
  Retry0.Attempt = 1;
  ASSERT_FALSE(static_cast<bool>(C->submit(Retry0)));
  auto Re = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Re)) << Re.message();
  EXPECT_EQ(Re->Replayed, 0u);
  EXPECT_EQ(Re->State, static_cast<uint8_t>(serve::JobState::Completed));
  expectScaledC(*C, 9); // the ninth execution

  (void)C->bye();
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().Admitted, 9u);
  EXPECT_EQ(R.Server->netStats().DedupReplays, 1u);
  EXPECT_EQ(R.Server->netStats().DedupEvictions, 5u);
  EXPECT_EQ(R.Server->netStats().RetrySubmits, 2u);
}

TEST(ExactlyOnceTest, DuplicateResultFramesAreSuppressed) {
  NetFault F(13);
  F.setRate(NetFaultKind::Dup, 1.0);
  F.setOnly(NetFaultKind::Dup, wire::MsgType::Result);
  NetServerConfig NC;
  NC.Fault = &F;
  ChaosRig R(NC);

  NetClientConfig CC;
  CC.CallTimeoutSec = 5.0;
  CC.Retries = 1; // arms the outstanding-set dup filter
  CC.SessionId = 11;
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, CC);
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);

  for (uint64_t Tag = 1; Tag <= 2; ++Tag) {
    ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(Tag))));
    auto Res = C->readResult();
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    EXPECT_EQ(Res->Tag, Tag);
    EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
  }
  // A request/reply pumps the trailing duplicate off the wire.
  auto J = C->stats();
  ASSERT_TRUE(static_cast<bool>(J)) << J.message();
  EXPECT_EQ(C->clientStats().DupResultsSuppressed, 2u);
  (void)C->bye();
}

TEST(ExactlyOnceTest, ResumableSessionSurvivesDisconnectAcrossDrain) {
  ChaosRig R;
  constexpr uint64_t Session = 9;
  constexpr unsigned Jobs = 3;

  {
    NetClientConfig CC;
    CC.CallTimeoutSec = 10.0;
    CC.SessionId = Session;
    auto C1 = NetClient::connectTcp("127.0.0.1", R.Port, CC);
    ASSERT_TRUE(static_cast<bool>(C1)) << C1.message();
    EXPECT_FALSE(C1->resumed());
    declareVecAddSurfaces(*C1);
    for (uint64_t Tag = 1; Tag <= Jobs; ++Tag)
      ASSERT_FALSE(static_cast<bool>(
          C1->submit(vecAddSubmit(Tag, 8, wire::SubmitHold))));
    // C1 dies abruptly here: no Bye, just a closed socket. The session
    // is resumable, so its held jobs and surfaces must survive.
  }

  NetClientConfig CC;
  CC.CallTimeoutSec = 10.0;
  CC.Retries = 1;
  CC.SessionId = Session;
  auto C2 = NetClient::connectTcp("127.0.0.1", R.Port, CC);
  ASSERT_TRUE(static_cast<bool>(C2)) << C2.message();
  EXPECT_TRUE(C2->resumed());

  // Retry the in-flight tags: they rebind, not re-admit.
  for (uint64_t Tag = 1; Tag <= Jobs; ++Tag) {
    wire::SubmitMsg M = vecAddSubmit(Tag, 8, wire::SubmitHold);
    M.Attempt = 1;
    ASSERT_FALSE(static_cast<bool>(C2->submit(M)));
  }

  // Drain runs the held jobs; their Results precede the summary.
  auto Summary = C2->drain();
  ASSERT_TRUE(static_cast<bool>(Summary)) << Summary.message();
  for (unsigned I = 0; I < Jobs; ++I) {
    auto Res = C2->readResult();
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
    EXPECT_EQ(Res->Replayed, 0u);
  }
  expectScaledC(*C2, 11); // surfaces survived the disconnect

  (void)C2->bye();
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().Admitted, Jobs);
  EXPECT_EQ(R.Server->server().stats().CancelledDisconnect, 0u);
  EXPECT_EQ(R.Server->netStats().SessionsResumed, 1u);
  EXPECT_EQ(R.Server->netStats().InFlightRebinds, Jobs);
}

TEST(ExactlyOnceTest, AnonymousSessionsKeepDisconnectCancellation) {
  // Without a session id, the pre-NetChaos contract holds: a vanished
  // client's queued jobs are cancelled, nothing lingers.
  ChaosRig R;
  {
    auto C = NetClient::connectTcp("127.0.0.1", R.Port, 10.0);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    declareVecAddSurfaces(*C);
    ASSERT_FALSE(static_cast<bool>(
        C->submit(vecAddSubmit(1, 8, wire::SubmitHold))));
    // Abrupt close with a held job queued.
  }
  // Poll until the reap lands (the loop notices EOF asynchronously).
  EXPECT_TRUE(R.awaitStatsContain("\"cancelled_disconnect\": 1"));
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().CancelledDisconnect, 1u);
  EXPECT_EQ(R.Server->netStats().SessionsResumed, 0u);
}

TEST(ExactlyOnceTest, DetachedSessionBoundEvictsTheOldest) {
  NetServerConfig NC;
  NC.MaxDetachedSessions = 2;
  ChaosRig R(NC);
  for (uint64_t Session = 1; Session <= 4; ++Session) {
    NetClientConfig CC;
    CC.CallTimeoutSec = 10.0;
    CC.SessionId = Session;
    auto C = NetClient::connectTcp("127.0.0.1", R.Port, CC);
    ASSERT_TRUE(static_cast<bool>(C)) << C.message();
    declareVecAddSurfaces(*C);
    ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(1))));
    auto Res = C->readResult();
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    // Abrupt close: the session detaches.
  }
  // Sessions 1 and 2 must have been evicted to honor the bound.
  EXPECT_TRUE(R.awaitStatsContain("\"sessions_evicted\": 2"));
  R.shutdown();
  EXPECT_EQ(R.Server->netStats().SessionsEvicted, 2u);
}

//===----------------------------------------------------------------------===//
// The chaos soak: 8 seeds x SimThreads {1,4} x devices {1,2}
//===----------------------------------------------------------------------===//

namespace {

struct SoakOutcome {
  std::vector<NetFaultSite> ServerSched, ClientSched;
  std::vector<uint8_t> SurfaceC;
  uint64_t Admitted = 0;
  uint64_t Completed = 0;
};

/// One closed-loop accumulation run under two-sided injection. Client
/// faults perturb Submit frames, server faults perturb Result frames;
/// both schedules derive only from per-stream frame order, so the same
/// seed must replay them at any SimThreads / device count.
SoakOutcome runChaosSoak(uint64_t Seed, unsigned SimThreads,
                         unsigned Devices) {
  constexpr unsigned Jobs = 6;
  constexpr unsigned N = 64;

  NetFault SrvF(Seed);
  SrvF.setRate(NetFaultKind::Drop, 0.06);
  SrvF.setRate(NetFaultKind::Truncate, 0.05);
  SrvF.setRate(NetFaultKind::Stall, 0.20);
  SrvF.setRate(NetFaultKind::Dup, 0.12);
  SrvF.setRate(NetFaultKind::Disconnect, 0.06);
  SrvF.setStallMs(5.0);
  for (unsigned K = 0; K < NumNetFaultKinds; ++K)
    SrvF.setOnly(static_cast<NetFaultKind>(K), wire::MsgType::Result);

  // Client side: Dup and Disconnect on Submit frames would make the
  // server's Result-frame count depend on read-chunk timing (a dup
  // arriving after the original finished replays an extra Result), so
  // the deterministic-replay soak sticks to the kinds whose recovery
  // path is timing-independent. Dup/Disconnect are exercised from the
  // server side above.
  NetFault CliF(Seed ^ 0x9e3779b9u);
  CliF.setRate(NetFaultKind::Drop, 0.06);
  CliF.setRate(NetFaultKind::Truncate, 0.05);
  CliF.setRate(NetFaultKind::Stall, 0.15);
  CliF.setStallMs(3.0);
  for (unsigned K = 0; K < NumNetFaultKinds; ++K)
    CliF.setOnly(static_cast<NetFaultKind>(K), wire::MsgType::Submit);

  NetServerConfig NC;
  NC.Fault = &SrvF;
  ChaosRig R(NC, SimThreads, Devices);

  SoakOutcome Out;
  {
    NetClientConfig CC;
    CC.CallTimeoutSec = 0.4;
    CC.Retries = 12;
    CC.BackoffBaseMs = 1;
    CC.BackoffCapMs = 8;
    CC.SessionId = 42;
    CC.Fault = &CliF;
    auto C = NetClient::connectTcp("127.0.0.1", R.Port, CC);
    EXPECT_TRUE(static_cast<bool>(C)) << C.message();
    if (!C)
      return Out;
    declareAccumSurfaces(*C, N);

    for (uint64_t Tag = 0; Tag < Jobs; ++Tag) {
      Error E = C->submit(accumSubmit(Tag));
      EXPECT_FALSE(static_cast<bool>(E)) << E.message();
      auto Res = C->readResult();
      EXPECT_TRUE(static_cast<bool>(Res)) << Res.message();
      if (!Res)
        return Out;
      EXPECT_EQ(Res->Tag, Tag);
      EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
    }

    auto D = C->fetch("C");
    EXPECT_TRUE(static_cast<bool>(D)) << D.message();
    if (D) {
      Out.SurfaceC = D->Data;
      for (unsigned K = 0; K < N; ++K)
        EXPECT_EQ(wordAt(D->Data, K),
                  static_cast<int32_t>(Jobs) * static_cast<int32_t>(K))
            << "seed " << Seed << " st " << SimThreads << " dev " << Devices
            << " element " << K;
    }
    (void)C->bye();
  }
  R.shutdown();
  Out.ServerSched = SrvF.firedSorted();
  Out.ClientSched = CliF.firedSorted();
  Out.Admitted = R.Server->server().stats().Admitted;
  Out.Completed = R.Server->server().stats().Completed;
  return Out;
}

} // namespace

class ChaosSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSoakTest, ExactlyOnceAndBitIdenticalAcrossConfigs) {
  const uint64_t Seed = GetParam() + 1;
  SoakOutcome Base = runChaosSoak(Seed, 1, 1);
  // Exactly-once side effects: every job admitted and executed exactly
  // once, no matter how many retries the wire faults forced.
  EXPECT_EQ(Base.Admitted, 6u);
  EXPECT_EQ(Base.Completed, 6u);
  EXPECT_FALSE(Base.ServerSched.empty() && Base.ClientSched.empty())
      << "the soak injected nothing — rates too low to test anything";

  struct {
    unsigned SimThreads, Devices;
  } Configs[] = {{4, 1}, {1, 2}, {4, 2}};
  for (auto [ST, Dev] : Configs) {
    SoakOutcome O = runChaosSoak(Seed, ST, Dev);
    EXPECT_EQ(O.Admitted, 6u) << "st " << ST << " dev " << Dev;
    EXPECT_EQ(O.Completed, 6u) << "st " << ST << " dev " << Dev;
    // Bit-identical surfaces across the whole matrix.
    EXPECT_EQ(O.SurfaceC, Base.SurfaceC) << "st " << ST << " dev " << Dev;
    // The same seed replays the same fault schedule at any SimThreads
    // and device count.
    EXPECT_EQ(O.ServerSched, Base.ServerSched) << "st " << ST << " dev "
                                               << Dev;
    EXPECT_EQ(O.ClientSched, Base.ClientSched) << "st " << ST << " dev "
                                               << Dev;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoakTest,
                         ::testing::Range<uint64_t>(0, 8));
