//===- tests/xdbg_test.cpp - Debugger tests -----------------------------------===//

#include "xdbg/Debugger.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::xdbg;

namespace {

constexpr const char *CountAsm = R"(
  mov.1.dw vr10 = 0
  mov.1.dw vr11 = 0
loop:
  add.1.dw vr10 = vr10, step
  add.1.dw vr11 = vr11, 1
  cmp.lt.1.dw p1 = vr11, 10
  br p1, loop
  mov.1.dw vr12 = 0
  st.1.dw (out, vr12, 0) = vr10
  halt
)";

struct DbgRig {
  DbgRig() : RT(Platform) {
    chi::ProgramBuilder PB;
    cantFail(
        PB.addXgmaKernel("count", CountAsm, {"step"}, {"out"}).takeError());
    Binary = PB.take();
    cantFail(RT.loadBinary(Binary));
    Out = Platform.allocateShared(16, "out");
  }

  /// Enqueues one shred directly on the device (a debug session drives
  /// the device instead of the runtime's dispatch loop).
  void enqueue(int32_t Step) {
    auto Table = std::make_shared<gma::SurfaceTable>();
    gma::SurfaceBinding S;
    S.Base = Out.Base;
    S.Width = 4;
    Table->push_back(S);
    gma::ShredDescriptor D;
    D.KernelId = 1; // first registered kernel
    D.Params = {Step};
    D.Surfaces = Table;
    Platform.device().enqueueShred(std::move(D));
  }

  exo::ExoPlatform Platform;
  chi::Runtime RT;
  fatbin::FatBinary Binary;
  exo::SharedBuffer Out;
};

} // namespace

TEST(DebuggerTest, BreakpointAtLabelStopsExecution) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  auto Bp = Dbg.setBreakpointAtLabel("count", "loop");
  ASSERT_TRUE(static_cast<bool>(Bp)) << Bp.message();

  R.enqueue(5);
  auto Stop = Dbg.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Stop)) << Stop.message();
  ASSERT_TRUE(Stop->has_value());
  EXPECT_EQ((*Stop)->KernelName, "count");
  EXPECT_EQ((*Stop)->Pc, 2u); // label `loop` is instruction 2
  EXPECT_EQ((*Stop)->Line, 5u);

  // vr11 (iteration counter) is still 0 on first arrival.
  EXPECT_EQ(cantFail(Dbg.readReg((*Stop)->ShredId, 11)), 0u);
}

TEST(DebuggerTest, ContinueHitsBreakpointEachIteration) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  cantFail(Dbg.setBreakpointAtLabel("count", "loop").takeError());

  R.enqueue(3);
  auto Stop = Dbg.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Stop));
  ASSERT_TRUE(Stop->has_value());
  uint32_t Shred = (*Stop)->ShredId;

  // The loop body runs 10 times; we should stop 10 times total at the
  // loop head with vr1 = 0..9.
  for (unsigned Iter = 1; Iter < 10; ++Iter) {
    auto Next = Dbg.continueRun();
    ASSERT_TRUE(static_cast<bool>(Next)) << Next.message();
    ASSERT_TRUE(Next->has_value()) << "iteration " << Iter;
    EXPECT_EQ(cantFail(Dbg.readReg(Shred, 11)), Iter);
  }
  auto Final = Dbg.continueRun();
  ASSERT_TRUE(static_cast<bool>(Final));
  EXPECT_FALSE(Final->has_value()); // drained
  EXPECT_EQ(R.Platform.load<int32_t>(R.Out.Base), 30);
}

TEST(DebuggerTest, SingleStepAdvancesOneInstruction) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  cantFail(Dbg.setBreakpointAtLabel("count", "loop").takeError());
  R.enqueue(1);
  auto Stop = Dbg.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Stop));
  ASSERT_TRUE(Stop->has_value());
  uint32_t Shred = (*Stop)->ShredId;
  EXPECT_EQ((*Stop)->Pc, 2u);

  auto S1 = Dbg.stepInstruction();
  ASSERT_TRUE(static_cast<bool>(S1)) << S1.message();
  ASSERT_TRUE(S1->has_value());
  EXPECT_EQ((*S1)->Pc, 3u);
  EXPECT_EQ(cantFail(Dbg.readReg(Shred, 10)), 1u); // add executed

  auto S2 = Dbg.stepInstruction();
  ASSERT_TRUE(static_cast<bool>(S2));
  ASSERT_TRUE(S2->has_value());
  EXPECT_EQ((*S2)->Pc, 4u);
  EXPECT_EQ(cantFail(Dbg.readReg(Shred, 11)), 1u);

  // Step through cmp and the taken branch: back to the loop head.
  auto S3 = Dbg.stepInstruction();
  ASSERT_TRUE(static_cast<bool>(S3));
  auto S4 = Dbg.stepInstruction();
  ASSERT_TRUE(static_cast<bool>(S4));
  ASSERT_TRUE(S4->has_value());
  EXPECT_EQ((*S4)->Pc, 2u);
}

TEST(DebuggerTest, WriteRegAltersExecution) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  cantFail(Dbg.setBreakpointAtLabel("count", "loop").takeError());
  R.enqueue(1);
  auto Stop = Dbg.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Stop));
  ASSERT_TRUE(Stop->has_value());

  // Force the iteration counter to 9: only one loop body left.
  cantFail(Dbg.writeReg((*Stop)->ShredId, 11, 9));
  cantFail(Dbg.clearBreakpoint(1));
  auto Final = Dbg.continueRun();
  ASSERT_TRUE(static_cast<bool>(Final));
  EXPECT_FALSE(Final->has_value());
  EXPECT_EQ(R.Platform.load<int32_t>(R.Out.Base), 1); // one add only
}

TEST(DebuggerTest, BreakpointAtLineSlidesToNextInstruction) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  // Line 4 is the label line: slides to the instruction at line 5.
  auto Bp = Dbg.setBreakpointAtLine("count", 4);
  ASSERT_TRUE(static_cast<bool>(Bp)) << Bp.message();
  R.enqueue(1);
  auto Stop = Dbg.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Stop));
  ASSERT_TRUE(Stop->has_value());
  EXPECT_EQ((*Stop)->Line, 5u);
}

TEST(DebuggerTest, DisassembleAndListSource) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  cantFail(Dbg.setBreakpointAtLabel("count", "loop").takeError());
  R.enqueue(1);
  auto Stop = Dbg.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Stop));
  ASSERT_TRUE(Stop->has_value());

  auto Dis = Dbg.disassembleCurrent((*Stop)->ShredId);
  ASSERT_TRUE(static_cast<bool>(Dis)) << Dis.message();
  EXPECT_NE(Dis->find("add.1.dw"), std::string::npos);

  auto Listing = Dbg.sourceListing("count", (*Stop)->Line, 1);
  ASSERT_TRUE(static_cast<bool>(Listing)) << Listing.message();
  EXPECT_NE(Listing->find("> "), std::string::npos);
  EXPECT_NE(Listing->find("add.1.dw vr10 = vr10, step"), std::string::npos);
}

TEST(DebuggerTest, Diagnostics) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  EXPECT_FALSE(static_cast<bool>(Dbg.setBreakpointAtLabel("nope", "loop")));
  EXPECT_FALSE(static_cast<bool>(Dbg.setBreakpointAtLabel("count", "nope")));
  EXPECT_FALSE(static_cast<bool>(Dbg.setBreakpointAtLine("count", 999)));
  EXPECT_TRUE(static_cast<bool>(Dbg.clearBreakpoint(77)));
  EXPECT_FALSE(static_cast<bool>(Dbg.continueRun())); // not stopped
  EXPECT_FALSE(static_cast<bool>(Dbg.stepInstruction()));
  EXPECT_FALSE(static_cast<bool>(Dbg.readReg(1, 0))); // nothing resident
}

TEST(DebuggerTest, MemoryInspectionThroughSharedVm) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  // Without an address space attached, memory access is diagnosed.
  EXPECT_FALSE(static_cast<bool>(Dbg.readWord(R.Out.Base)));

  Dbg.attachMemory(R.Platform.addressSpace());
  cantFail(Dbg.writeWord(R.Out.Base, 0xabcd1234));
  EXPECT_EQ(cantFail(Dbg.readWord(R.Out.Base)), 0xabcd1234u);

  // The shred's store is visible to the debugger through the same memory
  // image.
  R.enqueue(2);
  cantFail(Dbg.setBreakpointAtLabel("count", "loop").takeError());
  auto Stop = Dbg.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Stop));
  cantFail(Dbg.clearBreakpoint(1));
  auto End = Dbg.continueRun();
  ASSERT_TRUE(static_cast<bool>(End));
  EXPECT_EQ(cantFail(Dbg.readWord(R.Out.Base)), 20u);
}

TEST(DebuggerTest, ListBreakpoints) {
  DbgRig R;
  Debugger Dbg(R.Platform.device(), R.Binary);
  auto A = cantFail(Dbg.setBreakpointAtLabel("count", "loop"));
  auto B = cantFail(Dbg.setBreakpointAtLine("count", 2));
  auto L = Dbg.listBreakpoints();
  ASSERT_EQ(L.size(), 2u);
  EXPECT_EQ(std::get<0>(L[0]), A);
  EXPECT_EQ(std::get<1>(L[0]), "count");
  EXPECT_EQ(std::get<0>(L[1]), B);
  cantFail(Dbg.clearBreakpoint(A));
  EXPECT_EQ(Dbg.listBreakpoints().size(), 1u);
}
