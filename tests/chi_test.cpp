//===- tests/chi_test.cpp - CHI runtime tests ---------------------------------===//

#include "chi/ChiApi.h"
#include "chi/Cooperative.h"
#include "chi/Hetero.h"
#include "kernels/Workloads.h"
#include "chi/ParallelRegion.h"
#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "chi/TaskQueue.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::chi;

namespace {

constexpr const char *VecAddAsm = R"(
  shl.1.dw vr1 = i, 3
  ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
  ld.8.dw  [vr10..vr17] = (B, vr1, 0)
  add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw  (C, vr1, 0)  = [vr18..vr25]
  halt
)";

/// Builds the vecadd fat binary.
fatbin::FatBinary buildVecAddBinary() {
  ProgramBuilder PB;
  auto Id = PB.addXgmaKernel("vecadd", VecAddAsm, {"i"}, {"A", "B", "C"});
  EXPECT_TRUE(static_cast<bool>(Id)) << Id.message();
  return PB.take();
}

/// Full-stack fixture: platform + runtime + vecadd binary + data.
struct VecAddRig {
  explicit VecAddRig(MemoryModel MM = MemoryModel::CCShared, unsigned N = 64)
      : RT(Platform, MM), N(N) {
    cantFail(RT.loadBinary(buildVecAddBinary()));
    A = Platform.allocateShared(N * 4, "A");
    B = Platform.allocateShared(N * 4, "B");
    C = Platform.allocateShared(N * 4, "C");
    for (unsigned K = 0; K < N; ++K) {
      Platform.store<int32_t>(A.Base + K * 4, static_cast<int32_t>(K));
      Platform.store<int32_t>(B.Base + K * 4, static_cast<int32_t>(K * 10));
    }
    ADesc = cantFail(chi_alloc_desc(RT, X3000, A.Base, CHI_INPUT, N, 1));
    BDesc = cantFail(chi_alloc_desc(RT, X3000, B.Base, CHI_INPUT, N, 1));
    CDesc = cantFail(chi_alloc_desc(RT, X3000, C.Base, CHI_OUTPUT, N, 1));
  }

  Expected<RegionHandle> dispatch(bool Nowait = false) {
    ParallelRegion R(RT, TargetIsa::X3000, "vecadd");
    R.shared("A", ADesc).shared("B", BDesc).shared("C", CDesc);
    R.privateVar("i", [](unsigned T) { return static_cast<int32_t>(T); });
    R.numThreads(N / 8);
    if (Nowait)
      R.masterNowait();
    return R.execute();
  }

  void verifyResult() {
    for (unsigned K = 0; K < N; ++K)
      EXPECT_EQ(Platform.load<int32_t>(C.Base + K * 4),
                static_cast<int32_t>(K * 11))
          << "element " << K;
  }

  exo::ExoPlatform Platform;
  Runtime RT;
  unsigned N;
  exo::SharedBuffer A, B, C;
  uint32_t ADesc = 0, BDesc = 0, CDesc = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// ProgramBuilder
//===----------------------------------------------------------------------===//

TEST(ProgramBuilderTest, BuildsKernelWithAbi) {
  ProgramBuilder PB;
  auto Id = PB.addXgmaKernel("k", VecAddAsm, {"i"}, {"A", "B", "C"});
  ASSERT_TRUE(static_cast<bool>(Id)) << Id.message();
  const fatbin::CodeSection *S = PB.binary().findById(*Id);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->ScalarParams, (std::vector<std::string>{"i"}));
  EXPECT_EQ(S->SurfaceParams, (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_FALSE(S->Debug.SourceText.empty());
  EXPECT_EQ(S->Debug.Lines.size(), 6u);
}

TEST(ProgramBuilderTest, RejectsDuplicateName) {
  ProgramBuilder PB;
  ASSERT_TRUE(static_cast<bool>(
      PB.addXgmaKernel("k", "  halt\n", {}, {})));
  auto Dup = PB.addXgmaKernel("k", "  halt\n", {}, {});
  EXPECT_FALSE(static_cast<bool>(Dup));
  EXPECT_NE(Dup.message().find("duplicate"), std::string::npos);
}

TEST(ProgramBuilderTest, PropagatesAssemblerDiagnostics) {
  ProgramBuilder PB;
  auto Bad = PB.addXgmaKernel("bad", "  bogus.1.dw vr0 = 1\n", {}, {});
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("unknown mnemonic"), std::string::npos);
  EXPECT_NE(Bad.message().find("bad"), std::string::npos); // kernel name
}

TEST(ProgramBuilderTest, Ia32StubMakesBinaryMultiIsa) {
  ProgramBuilder PB;
  PB.addIa32Stub("host_loop");
  ASSERT_TRUE(static_cast<bool>(
      PB.addXgmaKernel("accel", "  halt\n", {}, {})));
  fatbin::FatBinary FB = PB.take();
  EXPECT_EQ(FB.findByName("host_loop")->Isa, fatbin::IsaTag::IA32);
  EXPECT_EQ(FB.findByName("accel")->Isa, fatbin::IsaTag::XGMA);
}

//===----------------------------------------------------------------------===//
// Descriptors and features (Table 1)
//===----------------------------------------------------------------------===//

TEST(DescriptorTest, AllocModifyFree) {
  exo::ExoPlatform P;
  Runtime RT(P);
  auto D = RT.allocDesc(TargetIsa::X3000, 0x1000, SurfaceMode::Input, 64, 2);
  ASSERT_TRUE(static_cast<bool>(D));
  const Descriptor *Desc = RT.descriptor(*D);
  ASSERT_NE(Desc, nullptr);
  EXPECT_EQ(Desc->Width, 64u);
  EXPECT_EQ(Desc->Height, 2u);
  EXPECT_EQ(Desc->totalBytes(), 64u * 2 * 4);
  EXPECT_EQ(Desc->HostDirtyBytes, Desc->totalBytes()); // starts dirty

  cantFail(RT.modifyDesc(*D, DescAttr::Width, 32));
  cantFail(RT.modifyDesc(*D, DescAttr::ElemType,
                         static_cast<int64_t>(isa::ElemType::I8)));
  EXPECT_EQ(RT.descriptor(*D)->totalBytes(), 32u * 2);

  cantFail(RT.freeDesc(*D));
  EXPECT_EQ(RT.descriptor(*D), nullptr);
  EXPECT_TRUE(static_cast<bool>(RT.freeDesc(*D))); // double free -> error
}

TEST(DescriptorTest, Diagnostics) {
  exo::ExoPlatform P;
  Runtime RT(P);
  EXPECT_FALSE(static_cast<bool>(
      RT.allocDesc(TargetIsa::IA32, 0x1000, SurfaceMode::Input, 4, 1)));
  EXPECT_FALSE(static_cast<bool>(
      RT.allocDesc(TargetIsa::X3000, 0x1000, SurfaceMode::Input, 0, 1)));
  EXPECT_TRUE(static_cast<bool>(RT.modifyDesc(999, DescAttr::Width, 8)));
}

TEST(FeatureTest, GlobalAndPerShredScopes) {
  exo::ExoPlatform P;
  Runtime RT(P);
  EXPECT_EQ(RT.feature(Feature::LocalityScheduling), 0);
  chi_set_feature(RT, Feature::LocalityScheduling, 1);
  EXPECT_EQ(RT.feature(Feature::LocalityScheduling), 1);

  chi_set_feature_pershred(RT, 7, Feature::ShredTag, 42);
  EXPECT_EQ(RT.featureForShred(7, Feature::ShredTag), 42);
  EXPECT_EQ(RT.featureForShred(8, Feature::ShredTag), 0); // falls to global
  EXPECT_EQ(RT.featureForShred(8, Feature::LocalityScheduling), 1);
}

TEST(FeatureTest, DefaultSurfaceTilingAppliesToNewDescriptors) {
  exo::ExoPlatform P;
  Runtime RT(P);
  chi_set_feature(RT, Feature::DefaultSurfaceTiling,
                  static_cast<int64_t>(mem::GpuMemType::WriteCombining));
  auto D = RT.allocDesc(TargetIsa::X3000, 0x1000, SurfaceMode::Output, 8, 1);
  ASSERT_TRUE(static_cast<bool>(D));
  EXPECT_EQ(RT.descriptor(*D)->MemType, mem::GpuMemType::WriteCombining);
}

//===----------------------------------------------------------------------===//
// Parallel region end-to-end
//===----------------------------------------------------------------------===//

TEST(ParallelRegionTest, Figure6EndToEnd) {
  VecAddRig R;
  auto H = R.dispatch();
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  R.verifyResult();

  const RegionStats *S = R.RT.regionStats(*H);
  ASSERT_NE(S, nullptr);
  EXPECT_EQ(S->ShredsSpawned, 8u);
  EXPECT_GT(S->totalNs(), 0.0);
  EXPECT_EQ(R.RT.totalShredsSpawned(), 8u);
  // Implied barrier: the master clock advanced to the region end.
  EXPECT_DOUBLE_EQ(R.RT.now(), S->EndNs);
}

TEST(ParallelRegionTest, MasterNowaitOverlapsMaster) {
  VecAddRig R;
  auto H = R.dispatch(/*Nowait=*/true);
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  const RegionStats *S = R.RT.regionStats(*H);
  // The master did not wait at the construct...
  EXPECT_LT(R.RT.now(), S->EndNs);
  // ...does its own IA32 work concurrently...
  cpu::WorkEstimate W;
  W.ScalarOps = 100;
  R.RT.runHostWork(W);
  // ...and later receives the asynchronous completion notification.
  cantFail(R.RT.wait(*H));
  EXPECT_GE(R.RT.now(), S->EndNs);
  R.verifyResult();
}

TEST(ParallelRegionTest, FirstprivateBroadcast) {
  exo::ExoPlatform P;
  Runtime RT(P);
  ProgramBuilder PB;
  cantFail(PB.addXgmaKernel("fill", R"(
    st.1.dw (out, i, 0) = value
    halt
  )",
                            {"i", "value"}, {"out"})
               .takeError());
  cantFail(RT.loadBinary(PB.binary()));

  auto Out = P.allocateShared(16 * 4, "out");
  uint32_t Desc = cantFail(RT.allocDesc(TargetIsa::X3000, Out.Base,
                                        SurfaceMode::Output, 16, 1));
  ParallelRegion R(RT, TargetIsa::X3000, "fill");
  R.shared("out", Desc)
      .firstprivate("value", 555)
      .privateVar("i", [](unsigned T) { return static_cast<int32_t>(T); })
      .numThreads(16);
  auto H = R.execute();
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  for (unsigned K = 0; K < 16; ++K)
    EXPECT_EQ(P.load<int32_t>(Out.Base + K * 4), 555);
}

TEST(ParallelRegionTest, UnknownKernelRejected) {
  exo::ExoPlatform P;
  Runtime RT(P);
  ParallelRegion R(RT, TargetIsa::X3000, "missing");
  auto H = R.numThreads(1).execute();
  ASSERT_FALSE(static_cast<bool>(H));
  EXPECT_NE(H.message().find("not in the fat binary"), std::string::npos);
}

TEST(ParallelRegionTest, MissingDescriptorRejected) {
  VecAddRig R;
  ParallelRegion Region(R.RT, TargetIsa::X3000, "vecadd");
  Region.shared("A", R.ADesc).shared("B", R.BDesc); // C missing
  Region.numThreads(1);
  auto H = Region.execute();
  ASSERT_FALSE(static_cast<bool>(H));
  EXPECT_NE(H.message().find("'C'"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Memory models (Section 5.2)
//===----------------------------------------------------------------------===//

TEST(MemoryModelTest, CopyCostsOrderModelsCorrectly) {
  auto RunModel = [](MemoryModel MM) {
    VecAddRig R(MM, 4096); // larger buffers make transfer costs visible
    auto H = R.dispatch();
    EXPECT_TRUE(static_cast<bool>(H)) << H.message();
    R.verifyResult(); // functional result identical in every model
    return R.RT.regionStats(*H)->totalNs();
  };

  double TCopy = RunModel(MemoryModel::DataCopy);
  double TNonCC = RunModel(MemoryModel::NonCCShared);
  double TCC = RunModel(MemoryModel::CCShared);

  // Figure 8's ordering: CC Shared fastest, Non-CC in between, Data Copy
  // slowest.
  EXPECT_LT(TCC, TNonCC);
  EXPECT_LT(TNonCC, TCopy);
}

TEST(MemoryModelTest, RegionStatsExposeCopyAndFlush) {
  {
    VecAddRig R(MemoryModel::DataCopy, 4096);
    auto H = R.dispatch();
    ASSERT_TRUE(static_cast<bool>(H));
    EXPECT_GT(R.RT.regionStats(*H)->CopyNs, 0.0);
    EXPECT_DOUBLE_EQ(R.RT.regionStats(*H)->FlushNs, 0.0);
  }
  {
    VecAddRig R(MemoryModel::NonCCShared, 4096);
    R.RT.setIntelligentFlush(false);
    auto H = R.dispatch();
    ASSERT_TRUE(static_cast<bool>(H));
    EXPECT_GT(R.RT.regionStats(*H)->FlushNs, 0.0);
    EXPECT_DOUBLE_EQ(R.RT.regionStats(*H)->CopyNs, 0.0);
  }
  {
    VecAddRig R(MemoryModel::CCShared, 4096);
    auto H = R.dispatch();
    ASSERT_TRUE(static_cast<bool>(H));
    EXPECT_DOUBLE_EQ(R.RT.regionStats(*H)->FlushNs, 0.0);
    EXPECT_DOUBLE_EQ(R.RT.regionStats(*H)->CopyNs, 0.0);
  }
}

TEST(MemoryModelTest, IntelligentFlushRecoversMostOfTheCost) {
  auto RunNonCC = [](bool Intelligent) {
    VecAddRig R(MemoryModel::NonCCShared, 8192);
    R.RT.setIntelligentFlush(Intelligent);
    auto H = R.dispatch();
    EXPECT_TRUE(static_cast<bool>(H));
    return R.RT.regionStats(*H)->totalNs();
  };
  double TNaive = RunNonCC(false);
  double TSmart = RunNonCC(true);
  EXPECT_LT(TSmart, TNaive); // overlapped flushing must win
}

TEST(MemoryModelTest, DirtyTrackingSkipsRedundantFlush) {
  VecAddRig R(MemoryModel::NonCCShared, 4096);
  R.RT.setIntelligentFlush(false);
  auto H1 = R.dispatch();
  ASSERT_TRUE(static_cast<bool>(H1));
  EXPECT_GT(R.RT.regionStats(*H1)->FlushNs, 0.0);

  // No host writes since: the second dispatch flushes nothing.
  auto H2 = R.dispatch();
  ASSERT_TRUE(static_cast<bool>(H2));
  EXPECT_DOUBLE_EQ(R.RT.regionStats(*H2)->FlushNs, 0.0);

  // Host produces fresh data -> flush needed again.
  cantFail(R.RT.markHostWrote(R.ADesc, 4096 * 4));
  auto H3 = R.dispatch();
  ASSERT_TRUE(static_cast<bool>(H3));
  EXPECT_GT(R.RT.regionStats(*H3)->FlushNs, 0.0);
}

//===----------------------------------------------------------------------===//
// Task queue (Section 4.3)
//===----------------------------------------------------------------------===//

namespace {

/// Builds a wavefront kernel: each task reads its left and upper
/// neighbours' cells (already computed, guaranteed by taskq deps) and
/// writes max(left, up) + 1 into its own cell of a WxH grid.
fatbin::FatBinary buildWavefrontBinary() {
  ProgramBuilder PB;
  cantFail(PB.addXgmaKernel("wavefront", R"(
    ; cell = y*W + x; left = cell-1 (if x>0); up = cell-W (if y>0)
    mov.1.dw vr10 = 0           ; best
    cmp.gt.1.dw p1 = x, 0
    br !p1, noleft
    sub.1.dw vr11 = cell, 1
    ld.1.dw vr12 = (grid, vr11, 0)
    max.1.dw vr10 = vr10, vr12
  noleft:
    cmp.gt.1.dw p2 = y, 0
    br !p2, noup
    sub.1.dw vr13 = cell, w
    ld.1.dw vr14 = (grid, vr13, 0)
    max.1.dw vr10 = vr10, vr14
  noup:
    add.1.dw vr10 = vr10, 1
    st.1.dw (grid, cell, 0) = vr10
    halt
  )",
                            {"cell", "x", "y", "w"}, {"grid"})
               .takeError());
  return PB.take();
}

} // namespace

TEST(TaskQueueTest, DeblockingStyleDependenciesHonoured) {
  constexpr unsigned W = 6, H = 4;
  exo::ExoPlatform P;
  Runtime RT(P);
  cantFail(RT.loadBinary(buildWavefrontBinary()));
  auto Grid = P.allocateShared(W * H * 4, "grid");
  uint32_t Desc = cantFail(
      RT.allocDesc(TargetIsa::X3000, Grid.Base, SurfaceMode::InputOutput, W,
                   H));

  TaskQueue Q(RT, "wavefront");
  Q.shared("grid", Desc);
  // Macroblock (x, y) depends on its left and upper neighbours — the
  // H.264 deblocking order of paper Section 4.3.
  std::vector<TaskQueue::TaskId> Ids(W * H);
  for (unsigned Y = 0; Y < H; ++Y)
    for (unsigned X = 0; X < W; ++X) {
      std::vector<TaskQueue::TaskId> Deps;
      if (X > 0)
        Deps.push_back(Ids[Y * W + X - 1]);
      if (Y > 0)
        Deps.push_back(Ids[(Y - 1) * W + X]);
      Ids[Y * W + X] = Q.task({{"cell", static_cast<int32_t>(Y * W + X)},
                               {"x", static_cast<int32_t>(X)},
                               {"y", static_cast<int32_t>(Y)},
                               {"w", static_cast<int32_t>(W)}},
                              Deps);
    }

  auto Stats = Q.finish();
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();
  // Wavefront depth = W + H - 1 anti-diagonals.
  EXPECT_EQ(Stats->Waves, W + H - 1);
  EXPECT_EQ(Stats->Tasks, static_cast<uint64_t>(W) * H);

  // If any dependency were violated, a cell would read a stale (0)
  // neighbour and its value would be too small.
  for (unsigned Y = 0; Y < H; ++Y)
    for (unsigned X = 0; X < W; ++X)
      EXPECT_EQ(P.load<int32_t>(Grid.Base + (Y * W + X) * 4),
                static_cast<int32_t>(X + Y + 1))
          << "cell " << X << "," << Y;
}

TEST(TaskQueueTest, IndependentTasksRunInOneWave) {
  exo::ExoPlatform P;
  Runtime RT(P);
  ProgramBuilder PB;
  cantFail(PB.addXgmaKernel("mark", "  st.1.dw (out, i, 0) = i\n  halt\n",
                            {"i"}, {"out"})
               .takeError());
  cantFail(RT.loadBinary(PB.binary()));
  auto Out = P.allocateShared(64 * 4, "out");
  uint32_t Desc = cantFail(
      RT.allocDesc(TargetIsa::X3000, Out.Base, SurfaceMode::Output, 64, 1));

  TaskQueue Q(RT, "mark");
  Q.shared("out", Desc);
  for (int K = 0; K < 64; ++K)
    Q.task({{"i", K}});
  auto Stats = Q.finish();
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();
  EXPECT_EQ(Stats->Waves, 1u);
  for (int K = 0; K < 64; ++K)
    EXPECT_EQ(P.load<int32_t>(Out.Base + K * 4), K);
}

TEST(TaskQueueTest, CycleDetected) {
  exo::ExoPlatform P;
  Runtime RT(P);
  ProgramBuilder PB;
  cantFail(PB.addXgmaKernel("noop", "  halt\n", {}, {}).takeError());
  cantFail(RT.loadBinary(PB.binary()));

  TaskQueue Q(RT, "noop");
  auto T0 = Q.task({}, {1}); // forward dep on T1
  auto T1 = Q.task({}, {T0});
  (void)T1;
  auto Stats = Q.finish();
  ASSERT_FALSE(static_cast<bool>(Stats));
  EXPECT_NE(Stats.message().find("cycle"), std::string::npos);
}

TEST(TaskQueueTest, UnknownDependencyRejected) {
  exo::ExoPlatform P;
  Runtime RT(P);
  ProgramBuilder PB;
  cantFail(PB.addXgmaKernel("noop", "  halt\n", {}, {}).takeError());
  cantFail(RT.loadBinary(PB.binary()));
  TaskQueue Q(RT, "noop");
  Q.task({}, {42});
  auto Stats = Q.finish();
  ASSERT_FALSE(static_cast<bool>(Stats));
  EXPECT_NE(Stats.message().find("unknown task"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Cooperative partitioning (Section 5.3)
//===----------------------------------------------------------------------===//

TEST(CooperativeTest, OracleBalancesAnalyticWorkload) {
  // Synthetic: CPU takes 300 ns/unit, GPU takes 100 ns/unit, 100 units.
  // Oracle fraction f* satisfies 300*100f = 100*100(1-f) -> f* = 0.25,
  // total = 7500 ns (vs 10000 all-GPU).
  auto Runner = [](double F) -> Expected<CooperativeOutcome> {
    CooperativeOutcome O;
    O.CpuFraction = F;
    O.CpuBusyNs = 300.0 * 100.0 * F;
    O.GpuBusyNs = 100.0 * 100.0 * (1.0 - F);
    O.TotalNs = std::max(O.CpuBusyNs, O.GpuBusyNs);
    return O;
  };
  auto Best = findOraclePartition(Runner, 16);
  ASSERT_TRUE(static_cast<bool>(Best));
  EXPECT_NEAR(Best->CpuFraction, 0.25, 0.02);
  EXPECT_NEAR(Best->TotalNs, 7500.0, 300.0);
  EXPECT_LT(Best->TotalNs, 10000.0); // beats all-GPU
}

TEST(CooperativeTest, OracleNeverWorseThanAllGpu) {
  // CPU is uselessly slow: oracle must stay at (or converge back to) ~0.
  auto Runner = [](double F) -> Expected<CooperativeOutcome> {
    CooperativeOutcome O;
    O.CpuFraction = F;
    O.CpuBusyNs = 1e9 * F;
    O.GpuBusyNs = 1000.0 * (1.0 - F);
    O.TotalNs = std::max(O.CpuBusyNs, O.GpuBusyNs);
    return O;
  };
  auto Best = findOraclePartition(Runner, 12);
  ASSERT_TRUE(static_cast<bool>(Best));
  EXPECT_LE(Best->TotalNs, 1000.0 + 1.0);
}

TEST(CooperativeTest, RunnerErrorsPropagate) {
  auto Runner = [](double) -> Expected<CooperativeOutcome> {
    return Error::make("sim exploded");
  };
  auto Best = findOraclePartition(Runner, 4);
  ASSERT_FALSE(static_cast<bool>(Best));
  EXPECT_NE(Best.message().find("sim exploded"), std::string::npos);
}

TEST(TaskQueueTest, SubordinateQueuesDependOnTheirEnclosingTask) {
  exo::ExoPlatform P;
  Runtime RT(P);
  ProgramBuilder PB;
  cantFail(PB.addXgmaKernel("stamp", R"(
    ld.1.dw vr8 = (out, slot, 0)
    add.1.dw vr8 = vr8, 1
    st.1.dw (out, slot, 0) = vr8
    ; record the order stamp: out[8+idx] = value of counter cell
    st.1.dw (out, idx, 0) = vr8
  )",
                            {"slot", "idx"}, {"out"})
               .takeError());
  cantFail(RT.loadBinary(PB.binary()));
  auto Out = P.allocateShared(64 * 4, "out");
  uint32_t Desc = cantFail(
      RT.allocDesc(TargetIsa::X3000, Out.Base, SurfaceMode::InputOutput, 64,
                   1));

  // Parent task increments cell 0 first; the subordinate queue's tasks
  // run strictly after it (they see counter >= 1).
  TaskQueue Q(RT, "stamp");
  Q.shared("out", Desc);
  auto Parent = Q.task({{"slot", 0}, {"idx", 8}});
  auto Sub = Q.nestedIn(Parent);
  Sub.task({{"slot", 0}, {"idx", 9}});
  Sub.task({{"slot", 0}, {"idx", 10}});
  auto Stats = Q.finish();
  ASSERT_TRUE(static_cast<bool>(Stats)) << Stats.message();
  EXPECT_EQ(Stats->Waves, 2u);
  EXPECT_EQ(P.load<int32_t>(Out.Base + 8 * 4), 1); // parent saw 1
  EXPECT_GE(P.load<int32_t>(Out.Base + 9 * 4), 2); // children after parent
  EXPECT_GE(P.load<int32_t>(Out.Base + 10 * 4), 2);
}

//===----------------------------------------------------------------------===//
// Heterogeneous static partitioning (chi/Hetero.h)
//===----------------------------------------------------------------------===//

namespace {

struct HeteroRig {
  HeteroRig() : RT(Platform) {
    WL = kernels::createSepiaTone(64, 32);
    ProgramBuilder PB;
    cantFail(WL->compile(PB));
    cantFail(RT.loadBinary(PB.binary()));
    cantFail(WL->setup(RT));
  }
  exo::ExoPlatform Platform;
  Runtime RT;
  std::unique_ptr<kernels::MediaWorkload> WL;
};

} // namespace

TEST(HeteroPartitionTest, SplitIsFunctionallyComplete) {
  HeteroRig Rig;
  kernels::MediaHeteroWork Work(*Rig.WL);
  auto O = runStaticPartition(Rig.RT, Work, 0.4);
  ASSERT_TRUE(static_cast<bool>(O)) << O.message();
  EXPECT_GT(O->TotalNs, 0.0);
  EXPECT_GT(O->CpuBusyNs, 0.0);
  EXPECT_GT(O->GpuBusyNs, 0.0);

  // Both halves landed in shared memory and match the full reference.
  cantFail(Rig.WL->hostCompute(0, Rig.WL->totalStrips()));
  Error E = Rig.WL->compareSharedToReference(Rig.RT);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
}

TEST(HeteroPartitionTest, AllCpuAndAllGpuEdges) {
  {
    HeteroRig Rig;
    kernels::MediaHeteroWork Work(*Rig.WL);
    auto O = runStaticPartition(Rig.RT, Work, 0.0);
    ASSERT_TRUE(static_cast<bool>(O));
    EXPECT_DOUBLE_EQ(O->CpuBusyNs, 0.0);
    EXPECT_GT(O->GpuBusyNs, 0.0);
  }
  {
    HeteroRig Rig;
    kernels::MediaHeteroWork Work(*Rig.WL);
    auto O = runStaticPartition(Rig.RT, Work, 1.0);
    ASSERT_TRUE(static_cast<bool>(O));
    EXPECT_GT(O->CpuBusyNs, 0.0);
    EXPECT_DOUBLE_EQ(O->GpuBusyNs, 0.0);
    cantFail(Rig.WL->hostCompute(0, Rig.WL->totalStrips()));
    Error E = Rig.WL->compareSharedToReference(Rig.RT);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  }
}

TEST(HeteroPartitionTest, TotalIsMaxOfBusySides) {
  HeteroRig Rig;
  kernels::MediaHeteroWork Work(*Rig.WL);
  auto O = runStaticPartition(Rig.RT, Work, 0.3);
  ASSERT_TRUE(static_cast<bool>(O));
  EXPECT_NEAR(O->TotalNs, std::max(O->CpuBusyNs, O->GpuBusyNs),
              O->TotalNs * 1e-9);
}
