//===- tests/trace_test.cpp - Device trace recorder tests ----------------------===//

#include "gma/Trace.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"
#include "kernels/Workloads.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::gma;

namespace {

/// Runs a small SepiaTone workload with a tracer attached.
TraceRecorder runTraced(uint64_t &ShredsOut) {
  exo::ExoPlatform P;
  chi::Runtime RT(P);
  TraceRecorder Tracer;
  P.device().setTracer(&Tracer);
  auto WL = kernels::createSepiaTone(64, 32);
  chi::ProgramBuilder PB;
  cantFail(WL->compile(PB));
  cantFail(RT.loadBinary(PB.binary()));
  cantFail(WL->setup(RT));
  cantFail(WL->dispatchDevice(RT, 0, WL->totalStrips()).takeError());
  ShredsOut = WL->totalStrips();
  return Tracer;
}

} // namespace

TEST(TraceTest, OneSpanPerShred) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  EXPECT_EQ(T.spans().size(), Shreds);
  for (const ShredSpan &S : T.spans()) {
    EXPECT_LT(S.StartNs, S.EndNs);
    EXPECT_LT(S.Eu, 8u);
    EXPECT_LT(S.Slot, 4u);
    EXPECT_EQ(S.Kernel, "SepiaTone");
  }
}

TEST(TraceTest, SpansDoNotOverlapWithinAContext) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  std::map<std::pair<unsigned, unsigned>, std::vector<ShredSpan>> ByRow;
  for (const ShredSpan &S : T.spans())
    ByRow[{S.Eu, S.Slot}].push_back(S);
  for (auto &[Row, Spans] : ByRow) {
    (void)Row;
    std::sort(Spans.begin(), Spans.end(),
              [](const ShredSpan &A, const ShredSpan &B) {
                return A.StartNs < B.StartNs;
              });
    for (size_t K = 1; K < Spans.size(); ++K)
      EXPECT_LE(Spans[K - 1].EndNs, Spans[K].StartNs + 1e-6)
          << "overlap on EU" << Spans[K].Eu << " ctx" << Spans[K].Slot;
  }
}

TEST(TraceTest, OccupancyIsSane) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  double Occ = T.occupancy();
  EXPECT_GT(Occ, 0.3); // a parallel dispatch should pack reasonably
  EXPECT_LE(Occ, 1.0);
  EXPECT_DOUBLE_EQ(TraceRecorder().occupancy(), 0.0);
}

TEST(TraceTest, ChromeJsonShape) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  std::string Json = T.toChromeJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("SepiaTone"), std::string::npos);
  EXPECT_NE(Json.find("EU0 ctx0"), std::string::npos);
  // One X event per shred.
  size_t Count = 0, Pos = 0;
  while ((Pos = Json.find("\"ph\":\"X\"", Pos)) != std::string::npos) {
    ++Count;
    Pos += 8;
  }
  EXPECT_EQ(Count, Shreds);
  T.clear();
  EXPECT_TRUE(T.spans().empty());
}
