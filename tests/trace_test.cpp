//===- tests/trace_test.cpp - Device trace recorder tests ----------------------===//

#include "gma/Trace.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"
#include "kernels/Workloads.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::gma;

namespace {

/// Runs a small SepiaTone workload with a tracer attached.
TraceRecorder runTraced(uint64_t &ShredsOut) {
  exo::ExoPlatform P;
  chi::Runtime RT(P);
  TraceRecorder Tracer;
  P.device().setTracer(&Tracer);
  auto WL = kernels::createSepiaTone(64, 32);
  chi::ProgramBuilder PB;
  cantFail(WL->compile(PB));
  cantFail(RT.loadBinary(PB.binary()));
  cantFail(WL->setup(RT));
  cantFail(WL->dispatchDevice(RT, 0, WL->totalStrips()).takeError());
  ShredsOut = WL->totalStrips();
  return Tracer;
}

} // namespace

TEST(TraceTest, OneSpanPerShred) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  EXPECT_EQ(T.spans().size(), Shreds);
  for (const ShredSpan &S : T.spans()) {
    EXPECT_LT(S.StartNs, S.EndNs);
    EXPECT_LT(S.Eu, 8u);
    EXPECT_LT(S.Slot, 4u);
    EXPECT_EQ(S.Kernel, "SepiaTone");
  }
}

TEST(TraceTest, SpansDoNotOverlapWithinAContext) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  std::map<std::pair<unsigned, unsigned>, std::vector<ShredSpan>> ByRow;
  for (const ShredSpan &S : T.spans())
    ByRow[{S.Eu, S.Slot}].push_back(S);
  for (auto &[Row, Spans] : ByRow) {
    (void)Row;
    std::sort(Spans.begin(), Spans.end(),
              [](const ShredSpan &A, const ShredSpan &B) {
                return A.StartNs < B.StartNs;
              });
    for (size_t K = 1; K < Spans.size(); ++K)
      EXPECT_LE(Spans[K - 1].EndNs, Spans[K].StartNs + 1e-6)
          << "overlap on EU" << Spans[K].Eu << " ctx" << Spans[K].Slot;
  }
}

TEST(TraceTest, OccupancyIsSane) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  double Occ = T.occupancy();
  EXPECT_GT(Occ, 0.3); // a parallel dispatch should pack reasonably
  EXPECT_LE(Occ, 1.0);
  EXPECT_DOUBLE_EQ(TraceRecorder().occupancy(), 0.0);
}

// Regression: the Chrome-JSON tid used to be Eu * 16 + Slot with a
// hardcoded 16, colliding rows on any device configured with more than
// 16 contexts per EU. The stride must follow the device geometry.
TEST(TraceTest, TidStrideFollowsDeviceGeometry) {
  TraceRecorder T;
  T.setGeometry(/*NumEus=*/2, /*ThreadsPerEu=*/32);
  // EU0 ctx20 and EU1 ctx4 collide under a stride of 16 (both tid 20);
  // under the geometry stride of 32 they map to 20 and 36.
  T.record({0, 0, 20, 1, "k", 0.0, 10.0});
  T.record({0, 1, 4, 2, "k", 0.0, 10.0});
  std::string Json = T.toChromeJson();
  EXPECT_NE(Json.find("\"tid\":20"), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"tid\":36"), std::string::npos) << Json;

  // Unknown geometry: the fallback stride derived from the spans (max
  // slot + 1 = 21) must still keep the two rows distinct.
  TraceRecorder U;
  U.record({0, 0, 20, 1, "k", 0.0, 10.0});
  U.record({0, 1, 4, 2, "k", 0.0, 10.0});
  std::string JU = U.toChromeJson();
  EXPECT_NE(JU.find("\"tid\":20"), std::string::npos) << JU;
  EXPECT_NE(JU.find("\"tid\":25"), std::string::npos) << JU;
}

// Regression: kernel names come from user-controlled fat-binary metadata
// and used to be spliced into the JSON verbatim.
TEST(TraceTest, ChromeJsonEscapesKernelNames) {
  TraceRecorder T;
  T.record({0, 0, 0, 1, "evil\"k\\n\name\t\x01", 0.0, 5.0});
  std::string Json = T.toChromeJson();
  EXPECT_NE(Json.find("evil\\\"k\\\\n\\name\\t\\u0001"), std::string::npos)
      << Json;
  // No raw quote/control characters may survive inside the name.
  EXPECT_EQ(Json.find("evil\"k"), std::string::npos);
}

// Regression: occupancy used to divide by the number of rows that
// happened to run a shred, so a device with 31 of 32 contexts idle
// reported 100% occupancy. With the geometry known the idle contexts
// must count against the ratio.
TEST(TraceTest, OccupancyCountsIdleContexts) {
  TraceRecorder T;
  T.setGeometry(/*NumEus=*/8, /*ThreadsPerEu=*/4);
  // One context busy for the whole window; the other 31 idle.
  T.record({0, 0, 0, 1, "k", 0.0, 100.0});
  EXPECT_NEAR(T.occupancy(), 1.0 / 32.0, 1e-12);

  // Two contexts, one busy half the window.
  T.record({0, 3, 2, 2, "k", 0.0, 50.0});
  EXPECT_NEAR(T.occupancy(), 1.5 / 32.0, 1e-12);

  // Without geometry the old spans-only fallback remains: busy rows only.
  TraceRecorder U;
  U.record({0, 0, 0, 1, "k", 0.0, 100.0});
  EXPECT_NEAR(U.occupancy(), 1.0, 1e-12);
}

TEST(TraceTest, ChromeJsonShape) {
  uint64_t Shreds = 0;
  TraceRecorder T = runTraced(Shreds);
  std::string Json = T.toChromeJson();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("SepiaTone"), std::string::npos);
  EXPECT_NE(Json.find("EU0 ctx0"), std::string::npos);
  // One X event per shred.
  size_t Count = 0, Pos = 0;
  while ((Pos = Json.find("\"ph\":\"X\"", Pos)) != std::string::npos) {
    ++Count;
    Pos += 8;
  }
  EXPECT_EQ(Count, Shreds);
  T.clear();
  EXPECT_TRUE(T.spans().empty());
}
