//===- tests/serve_test.cpp - ExoServe scheduling & protection ---------------===//
//
// Tests for the ExoServe job layer (DESIGN.md §12): bounded admission
// with quotas/priorities/shedding, cycle-based deadline budgets enforced
// at epoch boundaries, the per-EU circuit breaker fed by FaultLab
// signals, graceful drain, and the liveness + determinism contracts —
// every submitted job reaches a terminal state, bit-identically for
// every GmaConfig::SimThreads value (the chaos soak).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "chi/TaskQueue.h"
#include "exo/ExoPlatform.h"
#include "fault/FaultInjector.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::serve;

namespace {

//===----------------------------------------------------------------------===//
// JobQueue units
//===----------------------------------------------------------------------===//

TEST(JobQueueTest, StrictPriorityFifoWithinClass) {
  JobQueue Q;
  ASSERT_TRUE(Q.tryAdmit(1, Priority::Low, 0).Admitted);
  ASSERT_TRUE(Q.tryAdmit(2, Priority::High, 0).Admitted);
  ASSERT_TRUE(Q.tryAdmit(3, Priority::Normal, 0).Admitted);
  ASSERT_TRUE(Q.tryAdmit(4, Priority::High, 0).Admitted);
  EXPECT_EQ(Q.size(), 4u);
  EXPECT_EQ(Q.pop(), std::optional<JobId>(2)); // high, oldest first
  EXPECT_EQ(Q.pop(), std::optional<JobId>(4));
  EXPECT_EQ(Q.pop(), std::optional<JobId>(3));
  EXPECT_EQ(Q.pop(), std::optional<JobId>(1));
  EXPECT_EQ(Q.pop(), std::nullopt);
  EXPECT_TRUE(Q.empty());
}

TEST(JobQueueTest, PerClientQuota) {
  JobQueueConfig C;
  C.PerClientCap = 2;
  JobQueue Q(C);
  ASSERT_TRUE(Q.tryAdmit(1, Priority::Normal, 7).Admitted);
  ASSERT_TRUE(Q.tryAdmit(2, Priority::Normal, 7).Admitted);
  JobQueue::Admission A = Q.tryAdmit(3, Priority::High, 7);
  EXPECT_FALSE(A.Admitted);
  EXPECT_EQ(A.Reason, RejectReason::ClientQuota);
  // Another client is unaffected, and popping frees the quota.
  EXPECT_TRUE(Q.tryAdmit(4, Priority::Normal, 8).Admitted);
  EXPECT_EQ(Q.clientLoad(7), 2u);
  ASSERT_TRUE(Q.pop().has_value());
  EXPECT_TRUE(Q.tryAdmit(5, Priority::Normal, 7).Admitted);
}

TEST(JobQueueTest, ShedsYoungestLowestBelowArrival) {
  JobQueueConfig C;
  C.Capacity = 3;
  JobQueue Q(C);
  ASSERT_TRUE(Q.tryAdmit(1, Priority::Low, 0).Admitted);
  ASSERT_TRUE(Q.tryAdmit(2, Priority::Low, 0).Admitted);
  ASSERT_TRUE(Q.tryAdmit(3, Priority::Normal, 0).Admitted);

  // A Low arrival has no victim strictly below it: queue-full.
  JobQueue::Admission Low = Q.tryAdmit(4, Priority::Low, 0);
  EXPECT_FALSE(Low.Admitted);
  EXPECT_EQ(Low.Reason, RejectReason::QueueFull);

  // A High arrival evicts the *youngest* Low entry (id 2, not 1).
  JobQueue::Admission High = Q.tryAdmit(5, Priority::High, 0);
  EXPECT_TRUE(High.Admitted);
  EXPECT_EQ(High.Shed, 2u);
  EXPECT_EQ(Q.size(), 3u);

  // Normal evicts the remaining Low; the next Normal finds only
  // Normal/High below-nothing and is rejected.
  JobQueue::Admission Norm = Q.tryAdmit(6, Priority::Normal, 0);
  EXPECT_TRUE(Norm.Admitted);
  EXPECT_EQ(Norm.Shed, 1u);
  JobQueue::Admission Norm2 = Q.tryAdmit(7, Priority::Normal, 0);
  EXPECT_FALSE(Norm2.Admitted);
  EXPECT_EQ(Norm2.Reason, RejectReason::QueueFull);

  // Pop order after the shedding: 5 (high), then 3, 6 (normal FIFO).
  EXPECT_EQ(Q.pop(), std::optional<JobId>(5));
  EXPECT_EQ(Q.pop(), std::optional<JobId>(3));
  EXPECT_EQ(Q.pop(), std::optional<JobId>(6));
}

TEST(JobQueueTest, DrainAllReturnsPopOrderAndEmpties) {
  JobQueue Q;
  ASSERT_TRUE(Q.tryAdmit(1, Priority::Low, 1).Admitted);
  ASSERT_TRUE(Q.tryAdmit(2, Priority::High, 2).Admitted);
  ASSERT_TRUE(Q.tryAdmit(3, Priority::Normal, 1).Admitted);
  std::vector<JobId> Ids = Q.drainAll();
  EXPECT_EQ(Ids, (std::vector<JobId>{2, 3, 1}));
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.clientLoad(1), 0u);
  EXPECT_EQ(Q.clientLoad(2), 0u);
}

//===----------------------------------------------------------------------===//
// Breaker units
//===----------------------------------------------------------------------===//

namespace {
/// One finished job in which \p Eus failed (device casualty list).
void failJob(Breaker &B, std::vector<unsigned> Eus) { B.onJobEnd(Eus); }
void cleanJob(Breaker &B) { B.onJobEnd({}); }
} // namespace

TEST(BreakerTest, TripsAfterConsecutiveFailingJobs) {
  Breaker B(2, BreakerConfig{/*TripThreshold=*/2, /*CooldownJobs=*/4,
                             /*MaxCooldownJobs=*/64});
  failJob(B, {0});
  EXPECT_EQ(B.state(0), Breaker::State::Closed);
  EXPECT_FALSE(B.quarantined(0));
  failJob(B, {0});
  EXPECT_EQ(B.state(0), Breaker::State::Open);
  EXPECT_TRUE(B.quarantined(0));
  EXPECT_EQ(B.state(1), Breaker::State::Closed);
  EXPECT_EQ(B.stats().Trips, 1u);
}

TEST(BreakerTest, CleanJobResetsConsecutiveCount) {
  Breaker B(1, BreakerConfig{2, 4, 64});
  failJob(B, {0});
  cleanJob(B);
  failJob(B, {0});
  EXPECT_EQ(B.state(0), Breaker::State::Closed) << "clean job must reset";
}

TEST(BreakerTest, CooldownProbeThenReadmit) {
  Breaker B(1, BreakerConfig{/*TripThreshold=*/1, /*CooldownJobs=*/3, 64});
  failJob(B, {0});
  ASSERT_EQ(B.state(0), Breaker::State::Open);
  // Quarantined EUs see no work, so cooldown jobs are clean by
  // construction; after CooldownJobs the breaker probes.
  cleanJob(B);
  cleanJob(B);
  EXPECT_EQ(B.state(0), Breaker::State::Open);
  cleanJob(B);
  EXPECT_EQ(B.state(0), Breaker::State::HalfOpen);
  EXPECT_FALSE(B.quarantined(0)) << "a probe readmits the EU";
  EXPECT_EQ(B.stats().Probes, 1u);
  cleanJob(B); // the probe job passes
  EXPECT_EQ(B.state(0), Breaker::State::Closed);
  EXPECT_EQ(B.stats().Readmits, 1u);
}

TEST(BreakerTest, FailedProbeReopensWithDoubledCooldown) {
  Breaker B(1, BreakerConfig{/*TripThreshold=*/1, /*CooldownJobs=*/2,
                             /*MaxCooldownJobs=*/64});
  failJob(B, {0});                      // trip #1, cooldown 2
  cleanJob(B);
  cleanJob(B);                          // -> HalfOpen
  ASSERT_EQ(B.state(0), Breaker::State::HalfOpen);
  failJob(B, {0});                      // probe fails: trip #2, cooldown 4
  EXPECT_EQ(B.state(0), Breaker::State::Open);
  EXPECT_EQ(B.stats().Trips, 2u);
  unsigned JobsToProbe = 0;
  while (B.state(0) == Breaker::State::Open) {
    cleanJob(B);
    ++JobsToProbe;
    ASSERT_LE(JobsToProbe, 16u);
  }
  EXPECT_EQ(JobsToProbe, 4u) << "cooldown must double after a failed probe";
}

TEST(BreakerTest, OnlyEuHardFailSignalsCount) {
  Breaker B(2, BreakerConfig{/*TripThreshold=*/1, 4, 64});
  fault::FaultSite S;
  S.Kind = fault::FaultKind::AtrTransient;
  S.Key = 0;
  B.noteFault(S);
  cleanJob(B);
  EXPECT_EQ(B.state(0), Breaker::State::Closed)
      << "non-EU-health faults must not trip the breaker";

  S.Kind = fault::FaultKind::EuHardFail;
  S.Key = 1;
  B.noteFault(S);
  cleanJob(B);
  EXPECT_EQ(B.state(1), Breaker::State::Open)
      << "live EuHardFail signals count as failures for the job in flight";
  EXPECT_EQ(B.state(0), Breaker::State::Closed);
}

//===----------------------------------------------------------------------===//
// Full-stack rig
//===----------------------------------------------------------------------===//

constexpr const char *VecAddAsm = R"(
  shl.1.dw vr1 = i, 3
  ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
  ld.8.dw  [vr10..vr17] = (B, vr1, 0)
  add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw  (C, vr1, 0)  = [vr18..vr25]
  halt
)";

/// Platform + runtime + vecadd binary + surfaces, ready to mint JobSpecs.
struct ServeRig {
  explicit ServeRig(unsigned SimThreads = 1, unsigned N = 64)
      : RT(Platform), N(N) {
    Platform.setSimThreads(SimThreads);
    chi::ProgramBuilder PB;
    cantFail(
        PB.addXgmaKernel("vecadd", VecAddAsm, {"i"}, {"A", "B", "C"})
            .takeError());
    cantFail(RT.loadBinary(PB.take()));
    A = Platform.allocateShared(N * 4, "A");
    B = Platform.allocateShared(N * 4, "B");
    C = Platform.allocateShared(N * 4, "C");
    for (unsigned K = 0; K < N; ++K) {
      Platform.store<int32_t>(A.Base + K * 4, static_cast<int32_t>(K));
      Platform.store<int32_t>(B.Base + K * 4, static_cast<int32_t>(K * 10));
    }
    ADesc = cantFail(RT.allocDesc(chi::TargetIsa::X3000, A.Base,
                                  chi::SurfaceMode::Input, N, 1));
    BDesc = cantFail(RT.allocDesc(chi::TargetIsa::X3000, B.Base,
                                  chi::SurfaceMode::Input, N, 1));
    CDesc = cantFail(RT.allocDesc(chi::TargetIsa::X3000, C.Base,
                                  chi::SurfaceMode::Output, N, 1));
  }

  chi::RegionSpec makeRegion() const {
    chi::RegionSpec Spec;
    Spec.KernelName = "vecadd";
    Spec.NumThreads = N / 8;
    Spec.SharedDescs = {{"A", ADesc}, {"B", BDesc}, {"C", CDesc}};
    Spec.Private["i"] = [](unsigned T) { return static_cast<int32_t>(T); };
    return Spec;
  }

  JobSpec makeJob(uint32_t Client = 0, Priority Pri = Priority::Normal,
                  int64_t DeadlineCycles = -1) const {
    JobSpec J;
    J.ClientId = Client;
    J.Pri = Pri;
    J.Region = makeRegion();
    J.DeadlineCycles = DeadlineCycles;
    return J;
  }

  void verifyResult() {
    for (unsigned K = 0; K < N; ++K)
      ASSERT_EQ(Platform.load<int32_t>(C.Base + K * 4),
                static_cast<int32_t>(K * 11))
          << "element " << K;
  }

  exo::ExoPlatform Platform;
  chi::Runtime RT;
  unsigned N;
  exo::SharedBuffer A, B, C;
  uint32_t ADesc = 0, BDesc = 0, CDesc = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Deadline edge cases (satellite: exact finish, zero budget, racing EXIT)
//===----------------------------------------------------------------------===//

// A job whose budget equals its natural duration *completes*: the device
// preempts only when the next event would land strictly beyond the
// deadline, so finishing exactly at the budget is within budget. A hair
// less and the watchdog wins the race at the final epoch boundary.
// Exercised at SimThreads 1 and 4: the preemption decision happens in
// the serial phase, so the race resolves identically.
TEST(ServeDeadlineTest, FinishExactlyAtBudgetCompletes) {
  for (unsigned Threads : {1u, 4u}) {
    SCOPED_TRACE("SimThreads=" + std::to_string(Threads));

    // Probe the natural duration on a pristine rig.
    chi::TimeNs Natural = 0;
    {
      ServeRig R(Threads);
      auto H = R.RT.dispatch(R.makeRegion());
      ASSERT_TRUE(static_cast<bool>(H)) << H.message();
      const chi::RegionStats *S = R.RT.regionStats(*H);
      ASSERT_FALSE(S->DeadlinePreempted);
      Natural = S->DeviceFinishNs - S->DeviceStartNs;
      ASSERT_GT(Natural, 0);
    }

    // Deadline == natural duration: the run's last event lands exactly
    // on the deadline and must NOT be preempted (the simulation is
    // deterministic, so the probe transfers exactly).
    {
      ServeRig R(Threads);
      chi::RegionSpec Spec = R.makeRegion();
      Spec.DeadlineNs = Natural;
      auto H = R.RT.dispatch(Spec);
      ASSERT_TRUE(static_cast<bool>(H)) << H.message();
      const chi::RegionStats *S = R.RT.regionStats(*H);
      EXPECT_FALSE(S->DeadlinePreempted)
          << "finishing exactly at the budget is within budget";
      EXPECT_EQ(S->Device.ShredsPreempted, 0u);
      R.verifyResult();
    }

    // A hair under the natural duration: the final event would land
    // past the deadline, so the watchdog preempts at that boundary.
    {
      ServeRig R(Threads);
      chi::RegionSpec Spec = R.makeRegion();
      Spec.DeadlineNs = Natural * 0.999;
      auto H = R.RT.dispatch(Spec);
      ASSERT_TRUE(static_cast<bool>(H)) << H.message();
      const chi::RegionStats *S = R.RT.regionStats(*H);
      EXPECT_TRUE(S->DeadlinePreempted);
      EXPECT_GE(S->Device.ShredsPreempted, 1u);
      // Preemption lands at the epoch boundary before the deadline;
      // ops already in flight still retire, so finish sits between the
      // deadline and the natural duration.
      EXPECT_LT(S->Device.FinishNs - S->Device.StartNs, Natural);
    }
  }
}

// Deadline preemption is bit-identical across SimThreads values.
TEST(ServeDeadlineTest, PreemptionDeterministicAcrossSimThreads) {
  gma::GmaRunStats Serial;
  for (unsigned Threads : {1u, 4u}) {
    ServeRig R(Threads);
    chi::RegionSpec Spec = R.makeRegion();
    Spec.DeadlineNs = 40.0; // cuts the run mid-flight
    auto H = R.RT.dispatch(Spec);
    ASSERT_TRUE(static_cast<bool>(H)) << H.message();
    const chi::RegionStats *S = R.RT.regionStats(*H);
    ASSERT_TRUE(S->DeadlinePreempted);
    if (Threads == 1) {
      Serial = S->Device;
      continue;
    }
    EXPECT_TRUE(S->Device == Serial)
        << "preempted-run stats diverge: preempted "
        << S->Device.ShredsPreempted << " vs " << Serial.ShredsPreempted;
  }
}

// Zero budget is rejected at admission — it never reaches the device.
TEST(ServeDeadlineTest, ZeroBudgetRejectedAtAdmission) {
  ServeRig R;
  Server Srv(R.RT);
  Server::SubmitResult Res = Srv.submit(R.makeJob(0, Priority::High, 0));
  EXPECT_FALSE(Res.Admitted);
  EXPECT_EQ(Res.Reason, RejectReason::ZeroBudget);
  const JobRecord *J = Srv.job(Res.Id);
  ASSERT_NE(J, nullptr);
  EXPECT_EQ(J->State, JobState::Rejected);
  EXPECT_TRUE(J->terminal());
  EXPECT_EQ(Srv.stats().RejectedZeroBudget, 1u);
  EXPECT_EQ(Srv.runNext(), std::nullopt);
}

//===----------------------------------------------------------------------===//
// Quarantine plumbing (device level)
//===----------------------------------------------------------------------===//

// Quarantine is policy state: it survives resetStats (which heals
// Offline), and with every EU quarantined the queue still drains through
// the IA32 host lane — quarantine degrades, never wedges.
TEST(ServeQuarantineTest, SurvivesResetAndFallsBackToHost) {
  ServeRig R;
  gma::GmaDevice &D = R.Platform.device();
  for (unsigned K = 0; K < R.Platform.config().Gma.NumEus; ++K)
    D.setEuQuarantine(K, true);
  D.resetStats();
  for (unsigned K = 0; K < R.Platform.config().Gma.NumEus; ++K)
    EXPECT_TRUE(D.euQuarantined(K)) << "EU " << K;

  auto H = R.RT.dispatch(R.makeRegion());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  R.verifyResult();
  EXPECT_GT(R.RT.regionStats(*H)->Device.HostRedispatches, 0u);

  // Lift the quarantine: the next dispatch runs on the EUs again.
  for (unsigned K = 0; K < R.Platform.config().Gma.NumEus; ++K)
    D.setEuQuarantine(K, false);
  auto H2 = R.RT.dispatch(R.makeRegion());
  ASSERT_TRUE(static_cast<bool>(H2)) << H2.message();
  EXPECT_EQ(R.RT.regionStats(*H2)->Device.HostRedispatches, 0u);
  R.verifyResult();
}

//===----------------------------------------------------------------------===//
// Injector reset wiring (satellite: back-to-back runs replay)
//===----------------------------------------------------------------------===//

// FaultInjector::reset rewinds the per-site occurrence counters and the
// fired log while keeping seed/rates/observer: the same decisions replay.
TEST(ServeInjectorTest, ResetReplaysDecisions) {
  fault::FaultInjector Inj(/*Seed=*/5);
  Inj.setRate(fault::FaultKind::AtrTransient, 0.5);
  std::vector<bool> First;
  for (unsigned K = 0; K < 32; ++K)
    First.push_back(Inj.shouldInject(fault::FaultKind::AtrTransient, K % 4));
  size_t FiredBefore = Inj.fired().size();
  EXPECT_GT(FiredBefore, 0u);

  Inj.reset();
  EXPECT_TRUE(Inj.fired().empty());
  for (unsigned K = 0; K < 32; ++K)
    EXPECT_EQ(Inj.shouldInject(fault::FaultKind::AtrTransient, K % 4),
              First[K])
        << "probe " << K;
  EXPECT_EQ(Inj.fired().size(), FiredBefore);
}

// Run setup (GmaDevice::resetStats) now rewinds the injector, so two
// identical dispatches see the identical fault schedule. A single-shred
// region is used deliberately: its per-EU probe/occurrence sequence is
// program order, independent of the device TLB/cache state that warms
// across runs (which only shifts timings, not the probe sequence) —
// only eu-hard-fail is armed, whose probes fire per memory op, not per
// translation miss.
TEST(ServeInjectorTest, BackToBackDispatchesReplayFaultSchedule) {
  ServeRig R;
  fault::FaultInjector Inj(/*Seed=*/11);
  Inj.setRate(fault::FaultKind::EuHardFail, 0.2);
  R.Platform.armFaultInjection(&Inj);

  chi::RegionSpec Spec = R.makeRegion();
  Spec.NumThreads = 1;

  auto H1 = R.RT.dispatch(Spec);
  ASSERT_TRUE(static_cast<bool>(H1)) << H1.message();
  std::vector<fault::FaultSite> FirstRun = Inj.fired();
  ASSERT_GT(FirstRun.size(), 0u) << "rate too low to exercise the probes";

  auto H2 = R.RT.dispatch(Spec);
  ASSERT_TRUE(static_cast<bool>(H2)) << H2.message();
  ASSERT_EQ(Inj.fired().size(), FirstRun.size())
      << "second run must replay, not continue, the fault schedule";
  for (size_t K = 0; K < FirstRun.size(); ++K)
    EXPECT_TRUE(Inj.fired()[K] == FirstRun[K])
        << "site " << K << ": " << Inj.fired()[K].str() << " vs "
        << FirstRun[K].str();
  EXPECT_EQ(R.RT.regionStats(*H1)->Device.FaultsInjected,
            R.RT.regionStats(*H2)->Device.FaultsInjected);
  EXPECT_EQ(R.RT.regionStats(*H1)->Device.EusOfflined,
            R.RT.regionStats(*H2)->Device.EusOfflined);
}

//===----------------------------------------------------------------------===//
// Server end-to-end
//===----------------------------------------------------------------------===//

TEST(ServerTest, RunsSubmittedJobsToCompletion) {
  ServeRig R;
  Server Srv(R.RT);
  std::vector<JobId> Ids;
  for (int K = 0; K < 5; ++K) {
    Server::SubmitResult Res = Srv.submit(R.makeJob(K % 2));
    ASSERT_TRUE(Res.Admitted);
    Ids.push_back(Res.Id);
  }
  Srv.runAll();
  for (JobId Id : Ids) {
    const JobRecord *J = Srv.job(Id);
    ASSERT_NE(J, nullptr);
    EXPECT_EQ(J->State, JobState::Completed) << "job " << Id;
    EXPECT_GE(J->EndNs, J->StartNs);
    EXPECT_GE(J->StartNs, J->SubmitNs);
  }
  EXPECT_EQ(Srv.stats().Completed, 5u);
  EXPECT_EQ(Srv.stats().Admitted, 5u);
  R.verifyResult();
}

TEST(ServerTest, HighPriorityRunsFirst) {
  ServeRig R;
  Server Srv(R.RT);
  JobId Low = Srv.submit(R.makeJob(0, Priority::Low)).Id;
  JobId High = Srv.submit(R.makeJob(0, Priority::High)).Id;
  EXPECT_EQ(Srv.runNext(), std::optional<JobId>(High));
  EXPECT_EQ(Srv.runNext(), std::optional<JobId>(Low));
}

TEST(ServerTest, DrainClosesAdmissionAndRunsQueuedJobs) {
  ServeRig R;
  Server Srv(R.RT);
  for (int K = 0; K < 4; ++K)
    ASSERT_TRUE(Srv.submit(R.makeJob()).Admitted);

  DrainSummary D = Srv.drain();
  EXPECT_EQ(D.QueuedAtDrain, 4u);
  EXPECT_EQ(D.RanToCompletion, 4u);
  EXPECT_EQ(D.Cancelled, 0u);
  EXPECT_GE(D.DrainEndNs, D.DrainStartNs);
  EXPECT_TRUE(Srv.draining());

  // Admission is closed: post-drain submissions are answered, not run.
  Server::SubmitResult Late = Srv.submit(R.makeJob());
  EXPECT_FALSE(Late.Admitted);
  EXPECT_EQ(Late.Reason, RejectReason::Draining);
  EXPECT_EQ(Srv.stats().RejectedDraining, 1u);

  // Idempotent on an empty queue.
  DrainSummary D2 = Srv.drain();
  EXPECT_EQ(D2.QueuedAtDrain, 0u);

  // The summary is machine-readable.
  EXPECT_NE(D.toJson().find("\"ran_to_completion\": 4"), std::string::npos)
      << D.toJson();
  R.verifyResult();
}

TEST(ServerTest, CancellingDrainMarksJobsDrained) {
  ServeRig R;
  Server Srv(R.RT);
  std::vector<JobId> Ids;
  for (int K = 0; K < 3; ++K)
    Ids.push_back(Srv.submit(R.makeJob()).Id);
  DrainSummary D = Srv.drain(/*CancelQueued=*/true);
  EXPECT_EQ(D.Cancelled, 3u);
  EXPECT_EQ(D.RanToCompletion, 0u);
  for (JobId Id : Ids) {
    EXPECT_EQ(Srv.job(Id)->State, JobState::Drained);
    EXPECT_TRUE(Srv.job(Id)->terminal());
  }
  EXPECT_EQ(Srv.stats().Drained, 3u);
}

TEST(ServerTest, UnknownKernelFailsJobWithoutPoisoningServer) {
  ServeRig R;
  Server Srv(R.RT);
  JobSpec Bad = R.makeJob();
  Bad.Region.KernelName = "no-such-kernel";
  JobId BadId = Srv.submit(std::move(Bad)).Id;
  JobId GoodId = Srv.submit(R.makeJob()).Id;
  Srv.runAll();
  EXPECT_EQ(Srv.job(BadId)->State, JobState::Failed);
  EXPECT_FALSE(Srv.job(BadId)->Error.empty());
  EXPECT_EQ(Srv.job(GoodId)->State, JobState::Completed);
  EXPECT_EQ(Srv.stats().Failed, 1u);
  R.verifyResult();
}

TEST(ServerTest, DeadlinePreemptedJobIsTerminalAndCounted) {
  ServeRig R;
  Server Srv(R.RT);
  JobId Id = Srv.submit(R.makeJob(0, Priority::Normal,
                                  /*DeadlineCycles=*/4)).Id;
  Srv.runAll();
  const JobRecord *J = Srv.job(Id);
  EXPECT_EQ(J->State, JobState::DeadlinePreempted);
  EXPECT_TRUE(J->terminal());
  EXPECT_GE(J->ShredsPreempted, 1u);
  EXPECT_EQ(Srv.stats().DeadlinePreempted, 1u);
  EXPECT_EQ(Srv.stats().Completed, 0u);
}

// With XCost admission on, the same doomed job never reaches the device:
// the static lower bound on the vecadd dispatch (8 shreds over 8 EUs at
// 8.5 issue cycles each) already exceeds a 4-cycle budget, so admission
// answers with a machine-readable cost-over-deadline rejection instead
// of dispatching and preempting.
TEST(ServerTest, CostAdmissionRejectsProvablyOverDeadlineJob) {
  ServeRig R;
  ServerConfig SC;
  SC.CostAdmission = true;
  Server Srv(R.RT, SC);
  Server::SubmitResult Res =
      Srv.submit(R.makeJob(0, Priority::Normal, /*DeadlineCycles=*/4));
  EXPECT_FALSE(Res.Admitted);
  EXPECT_EQ(Res.Reason, RejectReason::CostOverDeadline);
  const JobRecord *J = Srv.job(Res.Id);
  ASSERT_NE(J, nullptr);
  EXPECT_EQ(J->State, JobState::Rejected);
  EXPECT_TRUE(J->terminal());
  EXPECT_EQ(J->ShredsPreempted, 0u); // never dispatched
  EXPECT_EQ(Srv.stats().RejectedCostOverDeadline, 1u);
  EXPECT_EQ(Srv.stats().DeadlinePreempted, 0u);
  EXPECT_NE(Srv.statsJson().find("\"rejected_cost_over_deadline\": 1"),
            std::string::npos)
      << Srv.statsJson();
  EXPECT_STREQ(rejectReasonName(RejectReason::CostOverDeadline),
               "cost-over-deadline");
}

// A feasible budget sails through the same gate and completes: the
// admission check only fires on *provable* overruns, so it can never
// reject a job the watchdog would have let finish.
TEST(ServerTest, CostAdmissionPassesFeasibleBudgets) {
  ServeRig R;
  ServerConfig SC;
  SC.CostAdmission = true;
  Server Srv(R.RT, SC);
  Server::SubmitResult Res =
      Srv.submit(R.makeJob(0, Priority::Normal, /*DeadlineCycles=*/100000));
  ASSERT_TRUE(Res.Admitted);
  Srv.runAll();
  EXPECT_EQ(Srv.job(Res.Id)->State, JobState::Completed);
  EXPECT_EQ(Srv.stats().RejectedCostOverDeadline, 0u);
  R.verifyResult();

  // Unlimited budgets (server default) are never cost-gated.
  Server::SubmitResult Free = Srv.submit(R.makeJob());
  EXPECT_TRUE(Free.Admitted);
  Srv.runAll();
  EXPECT_EQ(Srv.job(Free.Id)->State, JobState::Completed);
}

// Under sustained EuHardFail injection the breaker trips, quarantines
// the failing EUs for subsequent jobs, and the server still answers
// every job (host lane underneath if every EU is out).
TEST(ServerTest, BreakerTripsAndJobsStillComplete) {
  ServeRig R;
  fault::FaultInjector Inj(/*Seed=*/42);
  Inj.setRate(fault::FaultKind::EuHardFail, 1.0);
  R.Platform.armFaultInjection(&Inj);

  ServerConfig SC;
  SC.Breaker.TripThreshold = 1;
  SC.Breaker.CooldownJobs = 64; // keep tripped EUs out for this test
  Server Srv(R.RT, SC, &Inj);

  for (int K = 0; K < 4; ++K)
    ASSERT_TRUE(Srv.submit(R.makeJob()).Admitted);
  Srv.runAll();

  EXPECT_EQ(Srv.stats().Completed, 4u);
  EXPECT_EQ(Srv.stats().Failed, 0u);
  EXPECT_GT(Srv.stats().BreakerTrips, 0u);
  EXPECT_GT(Srv.stats().FaultSignals[static_cast<unsigned>(
                fault::FaultKind::EuHardFail)],
            0u);
  unsigned Quarantined = 0;
  for (unsigned K = 0; K < Srv.breaker().numEus(); ++K)
    Quarantined += Srv.breaker().quarantined(K);
  EXPECT_GT(Quarantined, 0u);
  R.verifyResult();
}

// After the cooldown the breaker probes (HalfOpen) and, with injection
// disarmed, readmits the EU: the healing half of the state machine,
// end to end.
TEST(ServerTest, BreakerProbesAndReadmitsAfterCooldown) {
  ServeRig R;
  fault::FaultInjector Inj(/*Seed=*/42);
  Inj.setRate(fault::FaultKind::EuHardFail, 1.0);
  R.Platform.armFaultInjection(&Inj);

  ServerConfig SC;
  SC.Breaker.TripThreshold = 1;
  SC.Breaker.CooldownJobs = 2;
  Server Srv(R.RT, SC, &Inj);

  ASSERT_TRUE(Srv.submit(R.makeJob()).Admitted);
  Srv.runAll();
  ASSERT_GT(Srv.stats().BreakerTrips, 0u);

  // The fault clears (rate to zero): cooldown elapses, probe passes.
  Inj.setRate(fault::FaultKind::EuHardFail, 0.0);
  for (int K = 0; K < 6; ++K) {
    ASSERT_TRUE(Srv.submit(R.makeJob()).Admitted);
    Srv.runAll();
  }
  EXPECT_GT(Srv.stats().BreakerProbes, 0u);
  EXPECT_GT(Srv.stats().BreakerReadmits, 0u);
  for (unsigned K = 0; K < Srv.breaker().numEus(); ++K)
    EXPECT_EQ(Srv.breaker().state(K), Breaker::State::Closed) << "EU " << K;
  EXPECT_EQ(Srv.stats().Failed, 0u);
  R.verifyResult();
}

//===----------------------------------------------------------------------===//
// TaskQueue drain budgets
//===----------------------------------------------------------------------===//

// A taskq drain under a whole-queue budget stops once the budget is
// spent: a wave is preempted (or the remainder is dropped between
// waves), DeadlinePreempted is set, and the remaining tasks are
// discarded rather than run over budget.
TEST(ServeTaskQueueTest, DrainBudgetStopsWavefront) {
  // Chained tasks force one wave per task: plenty of boundaries for the
  // budget to land between.
  auto buildQueue = [](chi::TaskQueue &Q) {
    std::vector<chi::TaskQueue::TaskId> Ids;
    for (int K = 0; K < 6; ++K)
      Ids.push_back(Q.task({{"i", K}},
                           Ids.empty()
                               ? std::vector<chi::TaskQueue::TaskId>{}
                               : std::vector<chi::TaskQueue::TaskId>{
                                     Ids.back()}));
  };

  // An unbudgeted probe on a pristine rig gives the natural drain time
  // (a fresh rig again below: device caches warm across runs, so a
  // second drain on the same rig would be faster than the probe).
  chi::TimeNs Natural = 0;
  {
    ServeRig R;
    chi::TaskQueue Q(R.RT, "vecadd");
    Q.shared("A", R.ADesc).shared("B", R.BDesc).shared("C", R.CDesc);
    buildQueue(Q);
    auto S = Q.finish();
    ASSERT_TRUE(static_cast<bool>(S)) << S.message();
    EXPECT_FALSE(S->DeadlinePreempted);
    EXPECT_EQ(S->TasksCompleted, 6u);
    Natural = S->totalNs();
    ASSERT_GT(Natural, 0);
  }

  ServeRig R;
  chi::TaskQueue Q(R.RT, "vecadd");
  Q.shared("A", R.ADesc).shared("B", R.BDesc).shared("C", R.CDesc);
  buildQueue(Q);
  Q.deadlineNs(Natural / 2);
  auto S = Q.finish();
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  EXPECT_TRUE(S->DeadlinePreempted);
  EXPECT_LT(S->TasksCompleted, 6u);
}

//===----------------------------------------------------------------------===//
// Chaos soak: liveness + determinism under overload, faults, deadlines
//===----------------------------------------------------------------------===//

namespace {

/// Everything observable about one served workload, for bit-exact
/// comparison across SimThreads values.
struct SoakOutcome {
  ServeStats Stats;
  DrainSummary Drain;
  // Per job: state, reason, preempted shreds, and the simulated clocks.
  std::vector<std::tuple<JobState, RejectReason, uint64_t, chi::TimeNs,
                         chi::TimeNs>>
      Jobs;

  bool operator==(const SoakOutcome &) const = default;
};

/// Submits 64 mixed-priority jobs from 4 clients against a 24-deep
/// queue under `all:` injection, runs 24, then drains gracefully.
SoakOutcome runSoak(uint64_t Seed, unsigned SimThreads) {
  ServeRig R(SimThreads);
  fault::FaultInjector Inj =
      cantFail(fault::FaultInjector::parse("all:0.1", Seed));
  R.Platform.armFaultInjection(&Inj);

  ServerConfig SC;
  SC.Queue.Capacity = 24;      // forces queue-full + shedding
  SC.Queue.PerClientCap = 10;  // forces client-quota rejections
  SC.Breaker.TripThreshold = 1;
  SC.Watchdog.DefaultBudgetCycles = 100000; // generous default
  Server Srv(R.RT, SC, &Inj);

  constexpr unsigned NumJobs = 64;
  for (unsigned J = 0; J < NumJobs; ++J) {
    // Mixed priorities and budgets: every 8th job has a zero budget
    // (rejected), every 5th a tight one (preempted or squeaks by).
    int64_t Cycles = -1;
    if (J % 8 == 7)
      Cycles = 0;
    else if (J % 5 == 0)
      Cycles = 40;
    Srv.submit(R.makeJob(/*Client=*/J % 4,
                         static_cast<Priority>(J % NumPriorities), Cycles));
  }

  unsigned Ran = 0;
  while (Ran < 24 && Srv.runNext())
    ++Ran;

  SoakOutcome Out;
  Out.Drain = Srv.drain();
  Out.Stats = Srv.stats();
  for (const JobRecord &J : Srv.jobs())
    Out.Jobs.push_back(
        {J.State, J.Reason, J.ShredsPreempted, J.StartNs, J.EndNs});
  return Out;
}

} // namespace

TEST(ServeSoakTest, EveryJobTerminalAndBitIdenticalAcrossSimThreads) {
  for (uint64_t Seed : {1u, 2u, 3u, 5u, 7u, 11u, 13u, 42u}) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    SoakOutcome Serial = runSoak(Seed, /*SimThreads=*/1);

    // Liveness: all 64 jobs reached a terminal state; the server never
    // hung, errored, or lost a job.
    ASSERT_EQ(Serial.Jobs.size(), 64u);
    for (size_t K = 0; K < Serial.Jobs.size(); ++K) {
      JobState St = std::get<0>(Serial.Jobs[K]);
      EXPECT_NE(St, JobState::Queued) << "job " << K + 1;
      EXPECT_NE(St, JobState::Running) << "job " << K + 1;
      EXPECT_NE(St, JobState::Failed) << "job " << K + 1
                                      << ": injected faults must degrade, "
                                         "not fail";
    }
    // The mix did exercise the protection machinery.
    EXPECT_EQ(Serial.Stats.RejectedZeroBudget, 8u);
    EXPECT_GT(Serial.Stats.RejectedQueueFull + Serial.Stats.Shed +
                  Serial.Stats.RejectedClientQuota,
              0u)
        << "overload path never engaged";
    EXPECT_EQ(Serial.Stats.Submitted, 64u);
    EXPECT_EQ(Serial.Stats.Completed + Serial.Stats.DeadlinePreempted +
                  Serial.Stats.Drained + Serial.Stats.Failed +
                  Serial.Stats.Shed + Serial.Stats.RejectedQueueFull +
                  Serial.Stats.RejectedClientQuota +
                  Serial.Stats.RejectedZeroBudget +
                  Serial.Stats.RejectedDraining,
              64u)
        << "every job accounted for exactly once";

    // Determinism: the whole served workload replays bit-identically
    // with the parallel engine.
    SoakOutcome Parallel = runSoak(Seed, /*SimThreads=*/4);
    EXPECT_TRUE(Parallel == Serial)
        << "served workload diverges at SimThreads=4 (completed "
        << Parallel.Stats.Completed << " vs " << Serial.Stats.Completed
        << ", preempted " << Parallel.Stats.DeadlinePreempted << " vs "
        << Serial.Stats.DeadlinePreempted << ")";
  }
}

//===----------------------------------------------------------------------===//
// Name tables
//===----------------------------------------------------------------------===//

TEST(ServeNamesTest, EnumsRenderStably) {
  EXPECT_STREQ(priorityName(Priority::High), "high");
  EXPECT_STREQ(rejectReasonName(RejectReason::QueueFull), "queue-full");
  EXPECT_STREQ(rejectReasonName(RejectReason::LoadShed), "load-shed");
  EXPECT_STREQ(jobStateName(JobState::DeadlinePreempted),
               "deadline-preempted");
  EXPECT_STREQ(jobStateName(JobState::Drained), "drained");
}

//===----------------------------------------------------------------------===//
// Mixed-deadline coalescing (PR regression: merge key vs budget)
//===----------------------------------------------------------------------===//

// Jobs with *different finite* budgets may merge; the batch must run
// under the tightest member budget, not the head's. A loose head job
// merged with a 10-cycle member must see the whole batch preempted —
// inheriting the head's billion-cycle budget instead would let the
// tight member silently overrun its deadline.
TEST(ServeCoalesceTest, MergedBatchInheritsTightestDeadline) {
  ServeRig R;
  Server Srv(R.RT);
  ASSERT_TRUE(
      Srv.submit(R.makeJob(0, Priority::Normal, 1'000'000'000)).Admitted);
  ASSERT_TRUE(Srv.submit(R.makeJob(0, Priority::Normal, 10)).Admitted);
  std::vector<JobId> Ran = Srv.runNextBatch(2);
  ASSERT_EQ(Ran.size(), 2u) << "same budget class: the jobs must merge";
  for (JobId Id : Ran) {
    const JobRecord *J = Srv.job(Id);
    ASSERT_NE(J, nullptr);
    EXPECT_EQ(J->BatchSize, 2u);
    EXPECT_EQ(J->State, JobState::DeadlinePreempted)
        << "job " << Id << ": the batch must run under the 10-cycle "
        << "member budget, not the loose head budget";
  }
}

// Sanity for the other direction: a loose budget alone is genuinely
// loose (the preemption above came from inheritance, not the head).
TEST(ServeCoalesceTest, LooseBudgetAloneCompletes) {
  ServeRig R;
  Server Srv(R.RT);
  ASSERT_TRUE(
      Srv.submit(R.makeJob(0, Priority::Normal, 1'000'000'000)).Admitted);
  ASSERT_TRUE(Srv.runNext().has_value());
  EXPECT_EQ(Srv.jobs().front().State, JobState::Completed);
  R.verifyResult();
}

// Budget *class* is the merge key: a bounded job must never drag a
// deadline onto an unbounded one (and vice versa), so the two run as
// separate singleton batches.
TEST(ServeCoalesceTest, BoundedAndUnboundedJobsDoNotMerge) {
  ServeRig R;
  Server Srv(R.RT);
  ASSERT_TRUE(Srv.submit(R.makeJob(0, Priority::Normal, 100)).Admitted);
  ASSERT_TRUE(Srv.submit(R.makeJob(0, Priority::Normal, -1)).Admitted);
  std::vector<JobId> First = Srv.runNextBatch(2);
  EXPECT_EQ(First.size(), 1u) << "budget classes differ: no merge";
  std::vector<JobId> Second = Srv.runNextBatch(2);
  EXPECT_EQ(Second.size(), 1u);
  for (const JobRecord &J : Srv.jobs()) {
    EXPECT_EQ(J.BatchSize, 1u);
    EXPECT_TRUE(J.terminal());
  }
}

//===----------------------------------------------------------------------===//
// Breaker reset symmetry with the fault injector
//===----------------------------------------------------------------------===//

// Server::reset() + FaultInjector::reset() must restore *both* halves
// of the protection state (breaker windows and fault schedule), so a
// second identical run replays the exact per-job trip/probe/readmit
// trace — the property operators rely on when bisecting a production
// trip sequence offline.
TEST(ServerTest, ResetReplaysIdenticalBreakerTrips) {
  ServeRig R;
  fault::FaultInjector Inj =
      cantFail(fault::FaultInjector::parse("eu-hard-fail:0.5", /*Seed=*/7));
  R.Platform.armFaultInjection(&Inj);

  ServerConfig SC;
  SC.Breaker.TripThreshold = 1;
  SC.Breaker.CooldownJobs = 2;
  Server Srv(R.RT, SC, &Inj);

  struct Snapshot {
    uint64_t Trips, Probes, Readmits;
    unsigned Quarantined;
    bool operator==(const Snapshot &) const = default;
  };
  auto Pass = [&](std::vector<Snapshot> &Trace) {
    for (int K = 0; K < 12; ++K) {
      EXPECT_TRUE(Srv.submit(R.makeJob()).Admitted);
      Srv.runAll();
      unsigned Q = 0;
      for (unsigned E = 0; E < Srv.breaker().numEus(); ++E)
        Q += Srv.breaker().quarantined(E);
      Trace.push_back({Srv.stats().BreakerTrips, Srv.stats().BreakerProbes,
                       Srv.stats().BreakerReadmits, Q});
    }
  };

  std::vector<Snapshot> First;
  Pass(First);
  ASSERT_GT(First.back().Trips, 0u) << "the scenario never tripped";

  Srv.reset();
  Inj.reset();
  std::vector<Snapshot> Second;
  Pass(Second);

  ASSERT_EQ(First.size(), Second.size());
  for (size_t K = 0; K < First.size(); ++K)
    EXPECT_TRUE(First[K] == Second[K])
        << "job " << K << ": trips " << First[K].Trips << " vs "
        << Second[K].Trips << ", probes " << First[K].Probes << " vs "
        << Second[K].Probes << ", readmits " << First[K].Readmits << " vs "
        << Second[K].Readmits << ", quarantined " << First[K].Quarantined
        << " vs " << Second[K].Quarantined;
}
