//===- tests/cpu_test.cpp - Unit tests for the IA32 timing model -------------===//

#include "cpu/CpuModel.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::cpu;

TEST(CpuModelTest, ComputeBoundWork) {
  mem::MemoryBus Bus;
  CpuConfig C;
  CpuModel M(C, Bus);
  WorkEstimate W;
  W.VectorOps = 24000; // 24000 cycles at 1/cycle
  double Done = M.execute(0.0, W);
  EXPECT_DOUBLE_EQ(Done, 24000 * C.cycleNs());
}

TEST(CpuModelTest, BandwidthBoundWork) {
  mem::MemoryBusParams BP;
  BP.BandwidthBytesPerNs = 1.0;
  BP.AccessLatencyNs = 0.0;
  mem::MemoryBus Bus(BP);
  CpuModel M(CpuConfig(), Bus);
  WorkEstimate W;
  W.ScalarOps = 10;          // negligible compute
  W.BytesRead = 1000000;     // 1 MB at 1 B/ns = 1 ms
  double Done = M.execute(0.0, W);
  EXPECT_NEAR(Done, 1e6, 1.0);
}

TEST(CpuModelTest, RooflineTakesMax) {
  mem::MemoryBusParams BP;
  BP.BandwidthBytesPerNs = 1.0;
  BP.AccessLatencyNs = 0.0;
  mem::MemoryBus Bus(BP);
  CpuConfig C;
  CpuModel M(C, Bus);
  WorkEstimate W;
  W.VectorOps = 1000000; // compute term dominates the 1000-byte transfer
  W.BytesRead = 1000;
  double Done = M.execute(0.0, W);
  EXPECT_DOUBLE_EQ(Done, 1000000 * C.cycleNs());
}

TEST(CpuModelTest, SamplerEmulationCharged) {
  mem::MemoryBus Bus;
  CpuConfig C;
  CpuModel M(C, Bus);
  WorkEstimate W;
  W.SamplerOps = 100;
  EXPECT_DOUBLE_EQ(M.computeNs(W), 100 * C.SamplerEmulationCycles * C.cycleNs());
}

TEST(CpuModelTest, WcCopyMatchesPaperRate) {
  mem::MemoryBus Bus;
  CpuModel M(CpuConfig(), Bus);
  // 3.1 GB/s = 3.1 B/ns: 3.1e6 bytes should take ~1e6 ns.
  double Done = M.copyWriteCombining(0.0, 3100000);
  EXPECT_NEAR(Done, 1e6, 1.0);
  EXPECT_EQ(M.stats().BytesCopied, 3100000u);
}

TEST(CpuModelTest, FlushMatchesPaperRate) {
  mem::MemoryBus Bus;
  CpuModel M(CpuConfig(), Bus);
  // 2 GB/s = 2 B/ns: 2e6 bytes -> 1e6 ns.
  double Done = M.flushCache(0.0, 2000000);
  EXPECT_NEAR(Done, 1e6, 1.0);
  EXPECT_EQ(M.stats().BytesFlushed, 2000000u);
}

TEST(CpuModelTest, ZeroWorkIsFree) {
  mem::MemoryBus Bus;
  CpuModel M(CpuConfig(), Bus);
  EXPECT_DOUBLE_EQ(M.execute(42.0, WorkEstimate()), 42.0);
  EXPECT_DOUBLE_EQ(M.copyWriteCombining(42.0, 0), 42.0);
  EXPECT_DOUBLE_EQ(M.flushCache(42.0, 0), 42.0);
}

TEST(WorkEstimateTest, Accumulate) {
  WorkEstimate A, B;
  A.VectorOps = 10;
  A.BytesRead = 100;
  B.VectorOps = 5;
  B.BytesWritten = 50;
  A += B;
  EXPECT_EQ(A.VectorOps, 15u);
  EXPECT_EQ(A.BytesRead, 100u);
  EXPECT_EQ(A.BytesWritten, 50u);
}

TEST(WorkEstimateTest, Scaled) {
  WorkEstimate W;
  W.VectorOps = 1000;
  W.ScalarOps = 500;
  W.BytesRead = 4000;
  WorkEstimate H = W.scaled(0.25);
  EXPECT_EQ(H.VectorOps, 250u);
  EXPECT_EQ(H.ScalarOps, 125u);
  EXPECT_EQ(H.BytesRead, 1000u);
}

TEST(CpuModelTest, SharedBusSerializesWithOtherAgents) {
  // The CPU and another agent (the GMA) share one bus: CPU work issued
  // while the bus is busy completes later.
  mem::MemoryBusParams BP;
  BP.BandwidthBytesPerNs = 1.0;
  BP.AccessLatencyNs = 0.0;
  mem::MemoryBus Bus(BP);
  CpuModel M(CpuConfig(), Bus);
  (void)Bus.request(0.0, 500); // another agent occupies the bus until t=500
  WorkEstimate W;
  W.BytesRead = 100;
  double Done = M.execute(0.0, W);
  EXPECT_DOUBLE_EQ(Done, 600.0);
}
