//===- tests/support_test.cpp - Unit tests for src/support -----------------===//

#include "support/Error.h"
#include "support/Format.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace exochi;

TEST(ErrorTest, SuccessIsFalsy) {
  Error E = Error::success();
  EXPECT_FALSE(E);
  EXPECT_EQ(E.message(), "");
}

TEST(ErrorTest, FailureCarriesMessage) {
  Error E = Error::make("boom");
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "boom");
}

TEST(ExpectedTest, HoldsValue) {
  Expected<int> E(42);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(*E, 42);
}

TEST(ExpectedTest, HoldsError) {
  Expected<int> E(Error::make("nope"));
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.message(), "nope");
  Error Err = E.takeError();
  EXPECT_TRUE(static_cast<bool>(Err));
}

TEST(FormatTest, FormatsLikePrintf) {
  EXPECT_EQ(formatString("x=%d y=%s", 7, "hi"), "x=7 y=hi");
  EXPECT_EQ(formatString("%05.2f", 3.14159), "03.14");
  EXPECT_EQ(formatString("empty"), "empty");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtilsTest, Split) {
  auto P = split("a,b,,c", ',');
  ASSERT_EQ(P.size(), 4u);
  EXPECT_EQ(P[0], "a");
  EXPECT_EQ(P[1], "b");
  EXPECT_EQ(P[2], "");
  EXPECT_EQ(P[3], "c");
}

TEST(StringUtilsTest, SplitLinesHandlesCrLf) {
  auto L = splitLines("one\r\ntwo\nthree");
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[0], "one");
  EXPECT_EQ(L[1], "two");
  EXPECT_EQ(L[2], "three");
}

TEST(StringUtilsTest, ParseInt) {
  EXPECT_EQ(parseInt("42").value(), 42);
  EXPECT_EQ(parseInt("-7").value(), -7);
  EXPECT_EQ(parseInt("0x10").value(), 16);
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("12abc").has_value());
  EXPECT_FALSE(parseInt("abc").has_value());
}

TEST(StringUtilsTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(parseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(parseDouble("1.2.3").has_value());
}

TEST(RngTest, Deterministic) {
  Rng A(123), B(123);
  for (int K = 0; K < 100; ++K)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, RangesRespected) {
  Rng R(7);
  for (int K = 0; K < 1000; ++K) {
    int64_t V = R.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
    EXPECT_LT(R.nextBelow(10), 10u);
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int K = 0; K < 64; ++K)
    if (A.next() == B.next())
      ++Same;
  EXPECT_LT(Same, 4);
}
