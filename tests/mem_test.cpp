//===- tests/mem_test.cpp - Unit tests for src/mem --------------------------===//

#include "mem/AddressSpace.h"
#include "mem/CacheModel.h"
#include "mem/MemoryBus.h"
#include "mem/PageTable.h"
#include "mem/PhysicalMemory.h"
#include "mem/Tlb.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::mem;

TEST(PhysicalMemoryTest, FramesAreZeroFilled) {
  PhysicalMemory PM;
  uint64_t F = PM.allocFrame();
  const uint8_t *D = PM.frameData(F);
  for (unsigned K = 0; K < PageSize; ++K)
    EXPECT_EQ(D[K], 0);
}

TEST(PhysicalMemoryTest, CrossFrameReadWrite) {
  PhysicalMemory PM;
  uint64_t F1 = PM.allocFrame();
  uint64_t F2 = PM.allocFrame();
  ASSERT_EQ(F2, F1 + 1); // sequential allocation gives adjacency
  PhysAddr Base = (F1 << PageShift) + PageSize - 8;
  uint8_t In[16], Out[16] = {};
  for (unsigned K = 0; K < 16; ++K)
    In[K] = static_cast<uint8_t>(K * 3 + 1);
  PM.write(Base, In, 16);
  PM.read(Base, Out, 16);
  for (unsigned K = 0; K < 16; ++K)
    EXPECT_EQ(Out[K], In[K]);
}

TEST(PhysicalMemoryTest, Word32RoundTrip) {
  PhysicalMemory PM;
  uint64_t F = PM.allocFrame();
  PhysAddr A = (F << PageShift) + 128;
  PM.write32(A, 0xdeadbeef);
  EXPECT_EQ(PM.read32(A), 0xdeadbeefu);
}

TEST(Ia32PteTest, EncodeDecode) {
  uint32_t Pte = ia32::makePte(0x1234, /*Writable=*/true, /*User=*/true);
  EXPECT_TRUE(ia32::isPresent(Pte));
  EXPECT_TRUE(ia32::isWritable(Pte));
  EXPECT_TRUE(ia32::isUser(Pte));
  EXPECT_EQ(ia32::frameOf(Pte), 0x1234u);

  uint32_t Ro = ia32::makePte(7, /*Writable=*/false, /*User=*/true);
  EXPECT_FALSE(ia32::isWritable(Ro));
}

TEST(GpuPteTest, EncodeDecode) {
  GpuPte P = GpuPte::make(0xabcd, /*Writable=*/true, GpuMemType::Cached);
  EXPECT_TRUE(P.valid());
  EXPECT_TRUE(P.writable());
  EXPECT_EQ(P.frame(), 0xabcdu);
  EXPECT_EQ(P.memType(), GpuMemType::Cached);
  EXPECT_FALSE(GpuPte().valid());
}

TEST(AtrTranscodeTest, PreservesFrameAndWritability) {
  uint32_t Pte = ia32::makePte(0x777, /*Writable=*/true, /*User=*/true);
  auto G = transcodePteIa32ToGpu(Pte, GpuMemType::WriteCombining);
  ASSERT_TRUE(static_cast<bool>(G));
  EXPECT_EQ(G->frame(), 0x777u);
  EXPECT_TRUE(G->writable());
  EXPECT_EQ(G->memType(), GpuMemType::WriteCombining);

  // The two formats are genuinely different: same frame, different raw bits.
  EXPECT_NE(static_cast<uint64_t>(Pte), G->Raw);
}

TEST(AtrTranscodeTest, RejectsNotPresent) {
  auto G = transcodePteIa32ToGpu(0, GpuMemType::Cached);
  EXPECT_FALSE(static_cast<bool>(G));
}

TEST(AtrTranscodeTest, RejectsSupervisorPages) {
  uint32_t Pte = ia32::makePte(1, /*Writable=*/true, /*User=*/false);
  auto G = transcodePteIa32ToGpu(Pte, GpuMemType::Cached);
  EXPECT_FALSE(static_cast<bool>(G));
}

TEST(AddressSpaceTest, MapAndTranslate) {
  PhysicalMemory PM;
  Ia32AddressSpace AS(PM);
  AS.mapPage(0x40000000, /*Writable=*/true);
  auto T = AS.translate(0x40000123, /*IsWrite=*/false);
  ASSERT_TRUE(static_cast<bool>(T));
  EXPECT_EQ(pageOffset(T->Phys), 0x123u);
  EXPECT_TRUE(ia32::isPresent(T->Pte));
}

TEST(AddressSpaceTest, UnmappedFaults) {
  PhysicalMemory PM;
  Ia32AddressSpace AS(PM);
  PageFault F;
  auto T = AS.translate(0x50000000, /*IsWrite=*/false, &F);
  EXPECT_FALSE(static_cast<bool>(T));
  EXPECT_EQ(F.Kind, FaultKind::NotPresent);
  EXPECT_FALSE(AS.handleFault(F)); // wild access: not serviceable
}

TEST(AddressSpaceTest, DemandPagingServicesFault) {
  PhysicalMemory PM;
  Ia32AddressSpace AS(PM);
  AS.reserve(0x60000000, 1 << 20, /*Writable=*/true, "heap");

  PageFault F;
  auto T = AS.translate(0x60001234, /*IsWrite=*/true, &F);
  ASSERT_FALSE(static_cast<bool>(T));
  EXPECT_EQ(F.Kind, FaultKind::DemandPage);
  EXPECT_TRUE(AS.handleFault(F));
  EXPECT_EQ(AS.demandFaults(), 1u);

  auto T2 = AS.translate(0x60001234, /*IsWrite=*/true);
  ASSERT_TRUE(static_cast<bool>(T2));
}

TEST(AddressSpaceTest, WriteProtectionFault) {
  PhysicalMemory PM;
  Ia32AddressSpace AS(PM);
  AS.mapPage(0x40000000, /*Writable=*/false);
  PageFault F;
  auto T = AS.translate(0x40000000, /*IsWrite=*/true, &F);
  EXPECT_FALSE(static_cast<bool>(T));
  EXPECT_EQ(F.Kind, FaultKind::WriteProtection);
  EXPECT_FALSE(AS.handleFault(F));
}

TEST(AddressSpaceTest, AccessedAndDirtyBitsSet) {
  PhysicalMemory PM;
  Ia32AddressSpace AS(PM);
  AS.mapPage(0x40000000, /*Writable=*/true);
  uint32_t Before = AS.rawPte(0x40000000);
  EXPECT_FALSE(Before & ia32::PteAccessed);

  (void)AS.translate(0x40000000, /*IsWrite=*/false);
  uint32_t AfterRead = AS.rawPte(0x40000000);
  EXPECT_TRUE(AfterRead & ia32::PteAccessed);
  EXPECT_FALSE(AfterRead & ia32::PteDirty);

  (void)AS.translate(0x40000000, /*IsWrite=*/true);
  uint32_t AfterWrite = AS.rawPte(0x40000000);
  EXPECT_TRUE(AfterWrite & ia32::PteDirty);
}

TEST(AddressSpaceTest, ReadWriteThroughVirtualMapping) {
  PhysicalMemory PM;
  Ia32AddressSpace AS(PM);
  AS.reserve(0x70000000, 1 << 16, /*Writable=*/true, "buf");

  // Spans multiple pages; exercises demand paging inside write().
  std::vector<uint8_t> In(10000), Out(10000);
  Rng R(99);
  for (auto &B : In)
    B = R.nextByte();
  AS.write(0x70000ff0, In.data(), In.size());
  AS.read(0x70000ff0, Out.data(), Out.size());
  EXPECT_EQ(In, Out);
  EXPECT_GT(AS.demandFaults(), 1u);
}

TEST(AddressSpaceTest, SharedFrameSeenByBothMappings) {
  // Two virtual pages mapped to one frame see each other's writes — the
  // foundation of the shared-virtual-memory model.
  PhysicalMemory PM;
  Ia32AddressSpace AS(PM);
  uint64_t Frame = PM.allocFrame();
  AS.mapPageToFrame(0x10000000, Frame, /*Writable=*/true);
  AS.mapPageToFrame(0x20000000, Frame, /*Writable=*/true);
  uint32_t V = 0xc0ffee;
  AS.write(0x10000010, &V, 4);
  uint32_t Got = 0;
  AS.read(0x20000010, &Got, 4);
  EXPECT_EQ(Got, 0xc0ffeeu);
}

TEST(TlbTest, HitAfterInsert) {
  Tlb T(4);
  EXPECT_FALSE(T.lookup(5).has_value());
  T.insert(5, GpuPte::make(50, true, GpuMemType::Cached));
  auto E = T.lookup(5);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->frame(), 50u);
  EXPECT_EQ(T.hits(), 1u);
  EXPECT_EQ(T.misses(), 1u);
}

TEST(TlbTest, LruEviction) {
  Tlb T(2);
  T.insert(1, GpuPte::make(10, true, GpuMemType::Cached));
  T.insert(2, GpuPte::make(20, true, GpuMemType::Cached));
  (void)T.lookup(1); // 2 becomes LRU
  T.insert(3, GpuPte::make(30, true, GpuMemType::Cached));
  EXPECT_TRUE(T.lookup(1).has_value());
  EXPECT_FALSE(T.lookup(2).has_value());
  EXPECT_TRUE(T.lookup(3).has_value());
  EXPECT_EQ(T.evictions(), 1u);
}

TEST(TlbTest, InvalidateAll) {
  Tlb T(8);
  for (uint64_t K = 0; K < 8; ++K)
    T.insert(K, GpuPte::make(K, true, GpuMemType::Cached));
  T.invalidateAll();
  EXPECT_EQ(T.size(), 0u);
  for (uint64_t K = 0; K < 8; ++K)
    EXPECT_FALSE(T.lookup(K).has_value());
}

TEST(TlbTest, InvalidateSingle) {
  Tlb T(8);
  T.insert(3, GpuPte::make(3, true, GpuMemType::Cached));
  T.insert(4, GpuPte::make(4, true, GpuMemType::Cached));
  T.invalidate(3);
  EXPECT_FALSE(T.lookup(3).has_value());
  EXPECT_TRUE(T.lookup(4).has_value());
}

TEST(MemoryBusTest, LatencyPlusBandwidth) {
  MemoryBusParams P;
  P.BandwidthBytesPerNs = 8.0;
  P.AccessLatencyNs = 100.0;
  MemoryBus Bus(P);
  // 800 bytes at 8 B/ns = 100 ns transfer + 100 ns latency.
  EXPECT_DOUBLE_EQ(Bus.request(0.0, 800), 200.0);
}

TEST(MemoryBusTest, BandwidthSerializesRequests) {
  MemoryBusParams P;
  P.BandwidthBytesPerNs = 1.0;
  P.AccessLatencyNs = 0.0;
  MemoryBus Bus(P);
  EXPECT_DOUBLE_EQ(Bus.request(0.0, 100), 100.0);
  // Issued at t=0 but the bus is busy until t=100.
  EXPECT_DOUBLE_EQ(Bus.request(0.0, 100), 200.0);
  EXPECT_EQ(Bus.totalBytes(), 200u);
}

TEST(MemoryBusTest, IdleBusStartsImmediately) {
  MemoryBus Bus;
  double T1 = Bus.request(1000.0, 64);
  EXPECT_GT(T1, 1000.0);
  EXPECT_DOUBLE_EQ(Bus.freeAt(), 1000.0 + 64 / Bus.params().BandwidthBytesPerNs);
}

TEST(CacheModelTest, HitAfterMiss) {
  CacheModel C(1024, 64, 2);
  EXPECT_FALSE(C.access(0, false).Hit);
  EXPECT_TRUE(C.access(32, false).Hit); // same line
  EXPECT_FALSE(C.access(64, false).Hit);
}

TEST(CacheModelTest, DirtyTrackingAndFlush) {
  CacheModel C(1024, 64, 2);
  C.access(0, true);
  C.access(64, true);
  C.access(128, false);
  EXPECT_EQ(C.dirtyBytes(), 128u);
  EXPECT_EQ(C.flushAll(), 128u);
  EXPECT_EQ(C.dirtyBytes(), 0u);
  EXPECT_FALSE(C.access(0, false).Hit); // flushed lines invalidated
}

TEST(CacheModelTest, EvictionWritesBackDirtyVictim) {
  CacheModel C(128, 64, 1); // 2 sets, direct mapped
  C.access(0, true);        // set 0, dirty
  auto R = C.access(128, false); // maps to set 0, evicts dirty line
  EXPECT_FALSE(R.Hit);
  EXPECT_TRUE(R.WritebackVictim);
  EXPECT_EQ(C.dirtyBytes(), 0u);
}

TEST(CacheModelTest, LruWithinSet) {
  CacheModel C(256, 64, 2); // 2 sets, 2 ways
  C.access(0, false);       // set 0
  C.access(128, false);     // set 0
  C.access(0, false);       // refresh line 0
  C.access(256, false);     // evicts 128
  EXPECT_TRUE(C.access(0, false).Hit);
  EXPECT_FALSE(C.access(128, false).Hit);
}
