//===- tests/xasm_test.cpp - Unit tests for the XGMA assembler --------------===//

#include "xasm/Assembler.h"

#include "isa/Isa.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exochi;
using namespace exochi::isa;
using namespace exochi::xasm;

namespace {

SymbolBindings figure6Bindings() {
  SymbolBindings B;
  B.bindScalar("i", 0);
  B.bindSurface("A", 0);
  B.bindSurface("B", 1);
  B.bindSurface("C", 2);
  return B;
}

/// The inline assembly block from the paper's Figure 6, verbatim.
constexpr const char *Figure6Asm = R"(
  shl.1.w  vr1 = i, 3
  ld.8.dw  [vr2..vr9] = (A, vr1, 0)
  ld.8.dw  [vr10..vr17] = (B, vr1, 0)
  add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw  (C, vr1, 0) = [vr18..vr25]
)";

} // namespace

TEST(AssemblerTest, Figure6Assembles) {
  auto K = assembleKernel(Figure6Asm, figure6Bindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  ASSERT_EQ(K->Code.size(), 5u);

  const Instruction &Shl = K->Code[0];
  EXPECT_EQ(Shl.Op, Opcode::Shl);
  EXPECT_EQ(Shl.Ty, ElemType::I16);
  EXPECT_EQ(Shl.Width, 1);
  EXPECT_EQ(Shl.Src0.Kind, OperandKind::Reg);
  EXPECT_EQ(Shl.Src0.Reg0, 0); // `i` bound to vr0
  EXPECT_EQ(Shl.Src1.Imm, 3);

  const Instruction &Ld = K->Code[1];
  EXPECT_EQ(Ld.Op, Opcode::Ld);
  EXPECT_EQ(Ld.Width, 8);
  EXPECT_EQ(Ld.Dst.regCount(), 8u);
  EXPECT_EQ(Ld.Src0.Kind, OperandKind::Surface);
  EXPECT_EQ(Ld.Src0.Imm, 0); // surface A -> slot 0

  const Instruction &St = K->Code[4];
  EXPECT_EQ(St.Op, Opcode::St);
  EXPECT_EQ(St.Src0.Imm, 2); // surface C -> slot 2
  EXPECT_EQ(St.Dst.Reg0, 18);
  EXPECT_EQ(St.Dst.Reg1, 25);
}

TEST(AssemblerTest, LineTableTracksSource) {
  auto K = assembleKernel(Figure6Asm, figure6Bindings());
  ASSERT_TRUE(static_cast<bool>(K));
  ASSERT_EQ(K->Lines.size(), 5u);
  // Source starts with a blank line, so the first instruction is line 2.
  EXPECT_EQ(K->Lines[0], 2u);
  EXPECT_EQ(K->Lines[4], 6u);
}

TEST(AssemblerTest, CommentsAndBlanksIgnored) {
  auto K = assembleKernel("; header comment\n"
                          "\n"
                          "  nop ; trailing\n"
                          "  halt // c++ style\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  ASSERT_EQ(K->Code.size(), 2u);
  EXPECT_EQ(K->Code[0].Op, Opcode::Nop);
  EXPECT_EQ(K->Code[1].Op, Opcode::Halt);
}

TEST(AssemblerTest, LabelsAndBranches) {
  auto K = assembleKernel("  mov.1.dw vr0 = 0\n"
                          "loop:\n"
                          "  add.1.dw vr0 = vr0, 1\n"
                          "  cmp.lt.1.dw p1 = vr0, 10\n"
                          "  br p1, loop\n"
                          "  halt\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  ASSERT_EQ(K->Code.size(), 5u);
  EXPECT_EQ(K->Labels.at("loop"), 1u);
  const Instruction &Br = K->Code[3];
  EXPECT_EQ(Br.Op, Opcode::Br);
  EXPECT_EQ(Br.PredReg, 1);
  EXPECT_EQ(Br.Src0.Kind, OperandKind::Label);
  EXPECT_EQ(Br.Src0.Imm, 1);
}

TEST(AssemblerTest, ForwardBranchResolved) {
  auto K = assembleKernel("  jmp end\n"
                          "  nop\n"
                          "end:\n"
                          "  halt\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->Code[0].Src0.Imm, 2);
}

TEST(AssemblerTest, NegatedPredicateBranch) {
  auto K = assembleKernel("top:\n"
                          "  cmp.eq.1.dw p2 = vr0, 0\n"
                          "  br !p2, top\n"
                          "  halt\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_TRUE(K->Code[1].PredNegate);
}

TEST(AssemblerTest, PredicationPrefix) {
  auto K = assembleKernel("  cmp.gt.4.dw p3 = [vr0..vr3], 0\n"
                          "  (p3) add.4.dw [vr4..vr7] = [vr0..vr3], 1\n"
                          "  (!p3) mov.4.dw [vr4..vr7] = 0\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->Code[1].PredReg, 3);
  EXPECT_FALSE(K->Code[1].PredNegate);
  EXPECT_TRUE(K->Code[2].PredNegate);
}

TEST(AssemblerTest, SelInstruction) {
  auto K = assembleKernel("  sel.8.dw p1, [vr8..vr15] = [vr0..vr7], 0\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->Code[0].Op, Opcode::Sel);
  EXPECT_EQ(K->Code[0].PredReg, 1);
}

TEST(AssemblerTest, FloatImmediatesTyped) {
  auto K = assembleKernel("  mul.4.f [vr0..vr3] = [vr4..vr7], 0.5\n"
                          "  add.4.f [vr0..vr3] = [vr0..vr3], 2\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  float Half, Two;
  std::memcpy(&Half, &K->Code[0].Src1.Imm, 4);
  std::memcpy(&Two, &K->Code[1].Src1.Imm, 4);
  EXPECT_FLOAT_EQ(Half, 0.5f);
  EXPECT_FLOAT_EQ(Two, 2.0f);
}

TEST(AssemblerTest, MemoryOffsetsStayIntegerInFloatOps) {
  auto K = assembleKernel("  ld.4.f [vr0..vr3] = (surf0, vr8, 4)\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->Code[0].Src2.Imm, 4); // element offset, not 4.0f bits
}

TEST(AssemblerTest, CvtSyntax) {
  auto K = assembleKernel("  cvt.8.f.dw [vr0..vr7] = [vr8..vr15]\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->Code[0].Op, Opcode::Cvt);
  EXPECT_EQ(K->Code[0].Ty, ElemType::F32);
  EXPECT_EQ(K->Code[0].SrcTy, ElemType::I32);
}

TEST(AssemblerTest, ThreadOps) {
  auto K = assembleKernel("  sid vr0\n"
                          "  xmit vr0, vr5 = vr6\n"
                          "  xmit 3, vr7 = 42\n"
                          "  wait vr5\n"
                          "  spawn vr0\n"
                          "  halt\n",
                          SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->Code[0].Op, Opcode::Sid);
  EXPECT_EQ(K->Code[1].Op, Opcode::Xmit);
  EXPECT_EQ(K->Code[2].Src0.Imm, 3);
  EXPECT_EQ(K->Code[2].Src1.Imm, 42);
  EXPECT_EQ(K->Code[3].Op, Opcode::Wait);
  EXPECT_EQ(K->Code[4].Op, Opcode::Spawn);
}

TEST(AssemblerTest, SampleSyntax) {
  SymbolBindings B;
  B.bindSurface("tex", 4);
  auto K = assembleKernel("  sample.4.f [vr0..vr3] = (tex, vr8, vr9)\n", B);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_EQ(K->Code[0].Op, Opcode::Sample);
  EXPECT_EQ(K->Code[0].Src0.Imm, 4);
}

//===----------------------------------------------------------------------===//
// Diagnostics.
//===----------------------------------------------------------------------===//

struct DiagCase {
  const char *Name;
  const char *Source;
  const char *ExpectSubstr;
};

class AssemblerDiagTest : public ::testing::TestWithParam<DiagCase> {};

TEST_P(AssemblerDiagTest, ReportsError) {
  const DiagCase &C = GetParam();
  auto K = assembleKernel(C.Source, figure6Bindings());
  ASSERT_FALSE(static_cast<bool>(K)) << "expected failure for " << C.Name;
  EXPECT_NE(K.message().find(C.ExpectSubstr), std::string::npos)
      << "got: " << K.message();
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerDiagTest,
    ::testing::Values(
        DiagCase{"UnknownMnemonic", "  frobnicate.8.dw vr0 = vr1\n",
                 "unknown mnemonic"},
        DiagCase{"UnknownSymbol", "  mov.1.dw vr0 = missing_var\n",
                 "unknown symbol"},
        DiagCase{"UndefinedLabel", "  jmp nowhere\n", "undefined label"},
        DiagCase{"DuplicateLabel", "x:\nx:\n  halt\n", "duplicate label"},
        DiagCase{"BadWidth", "  add.99.dw vr0 = vr1, vr2\n", "bad SIMD width"},
        DiagCase{"BadType", "  add.8.qq [vr0..vr7] = [vr8..vr15], 1\n",
                 "bad element type"},
        DiagCase{"MissingEquals", "  add.1.dw vr0 vr1, vr2\n", "expected '='"},
        DiagCase{"DescendingRange", "  mov.8.dw [vr9..vr2] = 0\n",
                 "descending"},
        DiagCase{"RangeWidthMismatch", "  mov.8.dw [vr0..vr3] = 0\n",
                 "registers"},
        DiagCase{"TrailingText", "  halt extra\n", "trailing"},
        DiagCase{"BadRegister", "  mov.1.dw vr999 = 0\n", "bad vector register"},
        DiagCase{"SurfaceOutsideMemOp", "  add.1.dw vr0 = A, 1\n",
                 "operand must be a register"}),
    [](const ::testing::TestParamInfo<DiagCase> &Info) {
      return Info.param.Name;
    });

TEST(AssemblerDiagLineNumbers, PointAtOffendingLine) {
  auto K = assembleKernel("  nop\n  nop\n  bogus.1.dw vr0 = 1\n",
                          SymbolBindings());
  ASSERT_FALSE(static_cast<bool>(K));
  EXPECT_NE(K.message().find("line 3"), std::string::npos) << K.message();
}
