//===- tests/exo_test.cpp - EXO layer tests (ATR, CEH, platform) --------------===//

#include "exo/ExoPlatform.h"

#include "xasm/Assembler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace exochi;
using namespace exochi::exo;

namespace {

/// Convenience: assemble + register a kernel on the platform device.
uint32_t loadKernel(ExoPlatform &P, const char *Asm,
                    const xasm::SymbolBindings &Binds) {
  auto K = xasm::assembleKernel(Asm, Binds);
  EXPECT_TRUE(static_cast<bool>(K)) << K.message();
  gma::KernelImage Img;
  Img.Code = K->Code;
  return P.device().registerKernel(std::move(Img));
}

std::shared_ptr<gma::SurfaceTable>
singleSurface(mem::VirtAddr Base, uint32_t Width, uint32_t Height,
              isa::ElemType Ty) {
  auto T = std::make_shared<gma::SurfaceTable>();
  gma::SurfaceBinding S;
  S.Base = Base;
  S.Width = Width;
  S.Height = Height;
  S.Elem = Ty;
  T->push_back(S);
  return T;
}

} // namespace

TEST(ExoPlatformTest, SharedBufferVisibleToBothSequencers) {
  ExoPlatform P;
  SharedBuffer Buf = P.allocateShared(64 * 4, "vec");

  // IA32 sequencer writes...
  for (unsigned K = 0; K < 64; ++K)
    P.store<int32_t>(Buf.Base + K * 4, static_cast<int32_t>(K * 3));

  // ...exo-sequencer shreds read, double, and write back through ATR.
  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("v", 0);
  uint32_t Kid = loadKernel(P, R"(
    shl.1.dw vr1 = i, 3
    ld.8.dw [vr2..vr9] = (v, vr1, 0)
    add.8.dw [vr2..vr9] = [vr2..vr9], [vr2..vr9]
    st.8.dw (v, vr1, 0) = [vr2..vr9]
    halt
  )",
                           Binds);

  auto Surfaces = singleSurface(Buf.Base, 64, 1, isa::ElemType::I32);
  for (unsigned I = 0; I < 8; ++I) {
    gma::ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {static_cast<int32_t>(I)};
    D.Surfaces = Surfaces;
    P.device().enqueueShred(std::move(D));
  }
  auto Exit = P.device().run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();

  // IA32 sequencer observes the exo-sequencers' writes: shared VM works.
  for (unsigned K = 0; K < 64; ++K)
    EXPECT_EQ(P.load<int32_t>(Buf.Base + K * 4), static_cast<int32_t>(K * 6));
}

TEST(ExoPlatformTest, AtrServicesDemandPagingViaProxy) {
  ExoPlatform P;
  SharedBuffer Buf = P.allocateShared(4 * mem::PageSize, "lazy");
  // Note: nothing touches the buffer from the IA32 side, so every page is
  // still unmapped when the exo-sequencer arrives.

  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("v", 0);
  uint32_t Kid = loadKernel(P, R"(
    mov.1.dw vr1 = 99
    st.1.dw (v, i, 0) = vr1
    halt
  )",
                           Binds);

  auto Surfaces =
      singleSurface(Buf.Base, 4 * mem::PageSize / 4, 1, isa::ElemType::I32);
  for (unsigned Page = 0; Page < 4; ++Page) {
    gma::ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {static_cast<int32_t>(Page * mem::PageSize / 4)};
    D.Surfaces = Surfaces;
    P.device().enqueueShred(std::move(D));
  }
  ASSERT_TRUE(static_cast<bool>(P.device().run(0.0)));

  const ProxyStats &S = P.proxy().stats();
  EXPECT_EQ(S.AtrRequests, 4u);       // one TLB miss per fresh page
  EXPECT_EQ(S.DemandPageFaults, 4u);  // each serviced by the OS via proxy
  EXPECT_EQ(S.PteTranscodes, 4u);     // each PTE transcoded to GPU format
  for (unsigned Page = 0; Page < 4; ++Page)
    EXPECT_EQ(P.load<int32_t>(Buf.Base + Page * mem::PageSize), 99);
}

TEST(ExoPlatformTest, AtrWriteProtectionIsFatal) {
  ExoPlatform P;
  // Map a read-only page directly (not a demand-paged region).
  mem::VirtAddr Va = 0x30000000;
  P.addressSpace().mapPage(Va, /*Writable=*/false);

  xasm::SymbolBindings Binds;
  Binds.bindSurface("v", 0);
  uint32_t Kid = loadKernel(P,
                            "  mov.1.dw vr0 = 0\n"
                            "  mov.1.dw vr1 = 5\n"
                            "  st.1.dw (v, vr0, 0) = vr1\n"
                            "  halt\n",
                            Binds);
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = singleSurface(Va, 16, 1, isa::ElemType::I32);
  P.device().enqueueShred(std::move(D));

  auto Exit = P.device().run(0.0);
  ASSERT_FALSE(static_cast<bool>(Exit));
  EXPECT_NE(Exit.message().find("fault"), std::string::npos);
}

TEST(ExoPlatformTest, ReadOnlyPageStillReadableByShred) {
  ExoPlatform P;
  mem::VirtAddr Va = 0x30000000;
  P.addressSpace().mapPage(Va, /*Writable=*/false);
  // Write through physical memory (simulating pre-initialized RO data).
  auto T = P.addressSpace().translate(Va, /*IsWrite=*/false);
  ASSERT_TRUE(static_cast<bool>(T));
  P.physicalMemory().write32(T->Phys, 1234);

  SharedBuffer Out = P.allocateShared(16, "out");
  xasm::SymbolBindings Binds;
  Binds.bindSurface("ro", 0);
  Binds.bindSurface("out", 1);
  uint32_t Kid = loadKernel(P,
                            "  mov.1.dw vr0 = 0\n"
                            "  ld.1.dw vr1 = (ro, vr0, 0)\n"
                            "  st.1.dw (out, vr0, 0) = vr1\n"
                            "  halt\n",
                            Binds);
  auto Surfaces = std::make_shared<gma::SurfaceTable>();
  gma::SurfaceBinding Ro;
  Ro.Base = Va;
  Ro.Width = 16;
  Surfaces->push_back(Ro);
  gma::SurfaceBinding Ob;
  Ob.Base = Out.Base;
  Ob.Width = 4;
  Surfaces->push_back(Ob);

  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = Surfaces;
  P.device().enqueueShred(std::move(D));
  ASSERT_TRUE(static_cast<bool>(P.device().run(0.0)));
  EXPECT_EQ(P.load<int32_t>(Out.Base), 1234);
}

//===----------------------------------------------------------------------===//
// CEH: IEEE-double emulation by the IA32 proxy
//===----------------------------------------------------------------------===//

namespace {

/// Runs a one-shred df kernel over a 6-element f64 surface initialized
/// with {A, B, -, -, -, -} and returns element 2 after execution.
double runF64Kernel(ExoPlatform &P, const char *Body, double A, double B) {
  SharedBuffer Buf = P.allocateShared(6 * 8, "f64");
  P.store<double>(Buf.Base, A);
  P.store<double>(Buf.Base + 8, B);

  xasm::SymbolBindings Binds;
  Binds.bindSurface("buf", 0);
  std::string Asm = std::string(R"(
    mov.1.dw vr30 = 0
    mov.1.dw vr31 = 1
    mov.1.dw vr32 = 2
    ld.1.df [vr0..vr1] = (buf, vr30, 0)
    ld.1.df [vr2..vr3] = (buf, vr31, 0)
)") + Body + R"(
    st.1.df (buf, vr32, 0) = [vr4..vr5]
    halt
  )";
  uint32_t Kid = loadKernel(P, Asm.c_str(), Binds);

  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = singleSurface(Buf.Base, 6, 1, isa::ElemType::F64);
  P.device().enqueueShred(std::move(D));
  auto Exit = P.device().run(0.0);
  EXPECT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  return P.load<double>(Buf.Base + 16);
}

} // namespace

TEST(CehTest, F64ArithmeticEmulatedWithIeeeSemantics) {
  {
    ExoPlatform P;
    EXPECT_DOUBLE_EQ(
        runF64Kernel(P, "    add.1.df [vr4..vr5] = [vr0..vr1], [vr2..vr3]\n",
                     1.25, 2.5),
        3.75);
  }
  {
    ExoPlatform P;
    EXPECT_DOUBLE_EQ(
        runF64Kernel(P, "    mul.1.df [vr4..vr5] = [vr0..vr1], [vr2..vr3]\n",
                     1.5, -4.0),
        -6.0);
  }
  {
    ExoPlatform P;
    EXPECT_DOUBLE_EQ(
        runF64Kernel(P, "    sub.1.df [vr4..vr5] = [vr0..vr1], [vr2..vr3]\n",
                     10.0, 0.125),
        9.875);
  }
  {
    // IEEE division by zero: +inf, no fault.
    ExoPlatform P;
    double R =
        runF64Kernel(P, "    div.1.df [vr4..vr5] = [vr0..vr1], [vr2..vr3]\n",
                     1.0, 0.0);
    EXPECT_TRUE(std::isinf(R));
    EXPECT_GT(R, 0);
  }
}

TEST(CehTest, F64PrecisionExceedsF32) {
  // 1 + 2^-40 is representable in double but collapses to 1.0f in single:
  // the CEH emulation must preserve the double result.
  ExoPlatform P;
  double Tiny = std::ldexp(1.0, -40);
  double R = runF64Kernel(
      P, "    add.1.df [vr4..vr5] = [vr0..vr1], [vr2..vr3]\n", 1.0, Tiny);
  EXPECT_NE(R, 1.0);
  EXPECT_DOUBLE_EQ(R, 1.0 + Tiny);
  EXPECT_GE(P.proxy().stats().ExceptionsEmulated, 1u);
}

TEST(CehTest, F64CompareAndSelect) {
  ExoPlatform P;
  double R = runF64Kernel(P,
                          "    cmp.gt.1.df p1 = [vr0..vr1], [vr2..vr3]\n"
                          "    sel.1.df p1, [vr4..vr5] = [vr0..vr1], "
                          "[vr2..vr3]\n",
                          7.5, 3.25);
  EXPECT_DOUBLE_EQ(R, 7.5); // max via cmp+sel
}

TEST(CehTest, F64ConvertNarrowingAndWidening) {
  ExoPlatform P;
  SharedBuffer Buf = P.allocateShared(4 * 8, "cvt");
  P.store<double>(Buf.Base, 2.75);

  xasm::SymbolBindings Binds;
  Binds.bindSurface("buf", 0);
  uint32_t Kid = loadKernel(P, R"(
    mov.1.dw vr30 = 0
    mov.1.dw vr31 = 1
    ld.1.df [vr0..vr1] = (buf, vr30, 0)
    cvt.1.dw.df vr10 = [vr0..vr1]      ; 2.75 -> 2 (truncate)
    cvt.1.df.dw [vr4..vr5] = vr10      ; 2 -> 2.0
    st.1.df (buf, vr31, 0) = [vr4..vr5]
    halt
  )",
                           Binds);
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = singleSurface(Buf.Base, 4, 1, isa::ElemType::F64);
  P.device().enqueueShred(std::move(D));
  auto Exit = P.device().run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_DOUBLE_EQ(P.load<double>(Buf.Base + 8), 2.0);
  EXPECT_EQ(P.proxy().stats().ExceptionsEmulated, 2u); // both cvt forms
}

TEST(CehTest, DivZeroPolicyFaultTerminates) {
  ExoPlatform P;
  xasm::SymbolBindings Binds;
  uint32_t Kid = loadKernel(P,
                            "  mov.1.dw vr0 = 10\n"
                            "  mov.1.dw vr1 = 0\n"
                            "  div.1.dw vr2 = vr0, vr1\n"
                            "  halt\n",
                            Binds);
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  P.device().enqueueShred(std::move(D));
  auto Exit = P.device().run(0.0);
  ASSERT_FALSE(static_cast<bool>(Exit));
  EXPECT_NE(Exit.message().find("divide by zero"), std::string::npos);
}

TEST(CehTest, DivZeroPolicyWriteZeroResumes) {
  ExoPlatform P;
  P.proxy().setDivZeroPolicy(DivZeroPolicy::WriteZero);
  SharedBuffer Out = P.allocateShared(8 * 4, "out");

  xasm::SymbolBindings Binds;
  Binds.bindSurface("out", 0);
  // Lane 2 divides by zero; the SEH handler writes 0 there and the other
  // lanes keep their quotients.
  uint32_t Kid = loadKernel(P, R"(
    mov.1.dw vr0 = 100
    mov.1.dw vr1 = 100
    mov.1.dw vr2 = 100
    mov.1.dw vr3 = 100
    mov.1.dw vr8 = 5
    mov.1.dw vr9 = 10
    mov.1.dw vr10 = 0
    mov.1.dw vr11 = 25
    div.4.dw [vr16..vr19] = [vr0..vr3], [vr8..vr11]
    mov.1.dw vr30 = 0
    st.4.dw (out, vr30, 0) = [vr16..vr19]
    halt
  )",
                           Binds);
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Surfaces = singleSurface(Out.Base, 8, 1, isa::ElemType::I32);
  P.device().enqueueShred(std::move(D));
  auto Exit = P.device().run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();

  EXPECT_EQ(P.load<int32_t>(Out.Base + 0), 20);
  EXPECT_EQ(P.load<int32_t>(Out.Base + 4), 10);
  EXPECT_EQ(P.load<int32_t>(Out.Base + 8), 0); // handled lane
  EXPECT_EQ(P.load<int32_t>(Out.Base + 12), 4);
  EXPECT_EQ(P.proxy().stats().DivZeroHandled, 1u);
}

TEST(CehTest, ProxyLatencyChargedToShred) {
  // The same kernel with and without a df instruction: the CEH round trip
  // must make the df version slower by at least the emulation cost.
  auto RunOnce = [](bool WithDf) {
    ExoPlatform P;
    SharedBuffer Buf = P.allocateShared(64, "b");
    P.store<double>(Buf.Base, 1.0);
    xasm::SymbolBindings Binds;
    Binds.bindSurface("buf", 0);
    std::string Asm = "  mov.1.dw vr30 = 0\n"
                      "  ld.1.df [vr0..vr1] = (buf, vr30, 0)\n";
    if (WithDf)
      Asm += "  add.1.df [vr2..vr3] = [vr0..vr1], [vr0..vr1]\n";
    Asm += "  halt\n";
    uint32_t Kid = loadKernel(P, Asm.c_str(), Binds);
    gma::ShredDescriptor D;
    D.KernelId = Kid;
    D.Surfaces = singleSurface(Buf.Base, 8, 1, isa::ElemType::F64);
    P.device().enqueueShred(std::move(D));
    EXPECT_TRUE(static_cast<bool>(P.device().run(0.0)));
    return P.device().stats().elapsedNs();
  };
  double Without = RunOnce(false), With = RunOnce(true);
  EXPECT_GT(With, Without + 1000.0);
}
