//===- tests/faultlab_test.cpp - FaultLab injection + resilience -------------===//
//
// Tests for the FaultLab deterministic fault-injection subsystem
// (DESIGN.md §11): a fixed seed fires the same faults at the same
// site-ids for every GmaConfig::SimThreads value, the degradation ladder
// (retry -> EU offline + re-dispatch -> IA32 host lane) completes
// workloads under injected faults with correct output, and a disarmed
// injector is observationally inert.
//
//===----------------------------------------------------------------------===//

#include "exo/ProxyExecution.h"
#include "fault/FaultInjector.h"
#include "gma/GmaDevice.h"

#include "mem/AddressSpace.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::gma;

namespace {

/// Fresh platform per run wired with the production proxy handler (the
/// one carrying the ATR/CEH probe sites and the IA32 host lane).
struct Rig {
  explicit Rig(GmaConfig Config = GmaConfig())
      : AS(PM), Device(Config, PM, Bus), Proxy(AS) {
    Device.setProxyHandler(&Proxy);
  }

  mem::VirtAddr alloc(uint64_t Bytes) {
    mem::VirtAddr Va = Allocator.allocate(Bytes);
    AS.reserve(Va, (Bytes + mem::PageSize - 1) & ~mem::PageOffsetMask,
               /*Writable=*/true, "test");
    return Va;
  }

  uint32_t loadKernel(const char *Asm, const xasm::SymbolBindings &Binds,
                      std::string Name) {
    auto K = xasm::assembleKernel(Asm, Binds);
    EXPECT_TRUE(static_cast<bool>(K)) << K.message();
    KernelImage Img;
    Img.Code = K->Code;
    Img.Name = std::move(Name);
    return Device.registerKernel(std::move(Img));
  }

  void arm(fault::FaultInjector &Inj) {
    Device.setFaultInjector(&Inj);
    Proxy.setFaultInjector(&Inj);
  }

  mem::PhysicalMemory PM;
  mem::MemoryBus Bus;
  mem::Ia32AddressSpace AS;
  mem::VirtualAllocator Allocator;
  GmaDevice Device;
  exo::ExoProxyHandler Proxy;
};

constexpr unsigned VecN = 1024; // 4 KiB per surface

/// Builds the ATR-miss-heavy vector-add workload (idempotent, so shreds
/// may be re-dispatched from scratch at any point). Returns surface C.
mem::VirtAddr buildVecAdd(Rig &R) {
  mem::VirtAddr A = R.alloc(VecN * 4), B = R.alloc(VecN * 4),
                C = R.alloc(VecN * 4);
  for (unsigned K = 0; K < VecN; ++K) {
    R.AS.store<int32_t>(A + K * 4, static_cast<int32_t>(K * 3));
    R.AS.store<int32_t>(B + K * 4, static_cast<int32_t>(7000 - K));
  }

  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("A", 0);
  Binds.bindSurface("B", 1);
  Binds.bindSurface("C", 2);
  uint32_t Kid = R.loadKernel(R"(
    shl.1.dw vr1 = i, 3
    ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
    ld.8.dw  [vr10..vr17] = (B, vr1, 0)
    add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw  (C, vr1, 0)  = [vr18..vr25]
    halt
  )",
                              Binds, "vecadd");

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({A, VecN, 1, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  Surfaces->push_back({B, VecN, 1, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  Surfaces->push_back({C, VecN, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});
  for (unsigned I = 0; I < VecN / 8; ++I) {
    ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {static_cast<int32_t>(I)};
    D.Surfaces = Surfaces;
    R.Device.enqueueShred(std::move(D));
  }
  return C;
}

void expectVecAddCorrect(Rig &R, mem::VirtAddr C) {
  for (unsigned K = 0; K < VecN; ++K)
    ASSERT_EQ(R.AS.load<int32_t>(C + K * 4),
              static_cast<int32_t>(K * 3 + 7000 - K))
        << "element " << K;
}

constexpr unsigned ThreadCounts[] = {1, 2, 4, 8};

} // namespace

//===----------------------------------------------------------------------===//
// Determinism: same seed, same faults, same site-ids, every SimThreads
//===----------------------------------------------------------------------===//

TEST(FaultLabTest, DeterminismAcrossSimThreads) {
  GmaRunStats SerialStats;
  exo::ProxyStats SerialProxy;
  std::vector<fault::FaultSite> SerialFired;
  std::vector<uint8_t> SerialMem;

  for (unsigned Threads : ThreadCounts) {
    SCOPED_TRACE("SimThreads=" + std::to_string(Threads));
    Rig R;
    R.Device.setSimThreads(Threads);
    fault::FaultInjector Inj =
        cantFail(fault::FaultInjector::parse("all:0.02", /*Seed=*/7));
    R.arm(Inj);

    mem::VirtAddr C = buildVecAdd(R);
    auto Exit = R.Device.run(0.0);
    ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
    EXPECT_EQ(*Exit, RunExit::QueueDrained);
    expectVecAddCorrect(R, C);
    EXPECT_GT(Inj.fired().size(), 0u) << "rate too low to exercise probes";

    std::vector<uint8_t> Mem(VecN * 4);
    R.AS.read(C, Mem.data(), VecN * 4);

    if (Threads == 1) {
      SerialStats = R.Device.stats();
      SerialProxy = R.Proxy.stats();
      SerialFired = Inj.fired();
      SerialMem = Mem;
      continue;
    }
    EXPECT_TRUE(R.Device.stats() == SerialStats)
        << "device stats diverge: faults "
        << R.Device.stats().FaultsInjected << " vs "
        << SerialStats.FaultsInjected << ", redispatched "
        << R.Device.stats().ShredsRedispatched << " vs "
        << SerialStats.ShredsRedispatched;
    EXPECT_EQ(R.Proxy.stats().InjectedFaults, SerialProxy.InjectedFaults);
    EXPECT_EQ(R.Proxy.stats().TransientRetries, SerialProxy.TransientRetries);
    EXPECT_EQ(R.Proxy.stats().OrphansEmulated, SerialProxy.OrphansEmulated);
    EXPECT_EQ(Mem, SerialMem);

    // The fired-site log is the replay identity: same sites, same order.
    ASSERT_EQ(Inj.fired().size(), SerialFired.size());
    for (size_t K = 0; K < SerialFired.size(); ++K)
      EXPECT_TRUE(Inj.fired()[K] == SerialFired[K])
          << "site " << K << ": " << Inj.fired()[K].str() << " vs "
          << SerialFired[K].str();
  }
}

//===----------------------------------------------------------------------===//
// Degradation ladder
//===----------------------------------------------------------------------===//

// A wedged EU's resident shreds are re-dispatched and the run still
// produces the correct result on the surviving EUs (or the host lane).
TEST(FaultLabTest, EuHardFailCompletesViaRedispatch) {
  Rig R;
  fault::FaultInjector Inj(/*Seed=*/42);
  Inj.setRate(fault::FaultKind::EuHardFail, 0.01);
  R.arm(Inj);

  mem::VirtAddr C = buildVecAdd(R);
  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_EQ(*Exit, RunExit::QueueDrained);
  expectVecAddCorrect(R, C);
  EXPECT_GE(R.Device.stats().EusOfflined, 1u);
  EXPECT_GE(R.Device.stats().ShredsRedispatched, 1u);
}

// With every EU wedged on its first resolved operation, the whole queue
// must fall through to the last rung: functional execution on the IA32
// host lane — and still produce the correct output.
TEST(FaultLabTest, AllEusOfflineFallsBackToHost) {
  Rig R;
  fault::FaultInjector Inj(/*Seed=*/1);
  Inj.setRate(fault::FaultKind::EuHardFail, 1.0);
  R.arm(Inj);

  mem::VirtAddr C = buildVecAdd(R);
  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_EQ(*Exit, RunExit::QueueDrained);
  expectVecAddCorrect(R, C);
  EXPECT_EQ(R.Device.stats().EusOfflined, GmaConfig().NumEus);
  EXPECT_GT(R.Device.stats().HostRedispatches, 0u);
  EXPECT_GT(R.Proxy.stats().OrphansEmulated, 0u);
  EXPECT_GT(R.Proxy.stats().OrphanInstructions, 0u);
}

// Transient ATR faults are retried with backoff inside the proxy and the
// run completes without ever surfacing an error.
TEST(FaultLabTest, TransientAtrRetrySurvives) {
  Rig R;
  fault::FaultInjector Inj(/*Seed=*/3);
  Inj.setRate(fault::FaultKind::AtrTransient, 0.5);
  R.arm(Inj);

  mem::VirtAddr C = buildVecAdd(R);
  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_EQ(*Exit, RunExit::QueueDrained);
  expectVecAddCorrect(R, C);
  EXPECT_GT(R.Proxy.stats().TransientRetries, 0u);
  EXPECT_GT(R.Device.stats().TlbMisses, 0u);
}

//===----------------------------------------------------------------------===//
// MISP mailbox faults
//===----------------------------------------------------------------------===//

namespace {

/// Producer/consumer pair (xmit/wait) plus one long-running looper shred
/// that keeps device time advancing past any wait timeout.
struct MailboxWorkload {
  mem::VirtAddr Out = 0;
  uint32_t ConsumerId = 0;
};

MailboxWorkload buildMailbox(Rig &R) {
  MailboxWorkload W;
  W.Out = R.alloc(4 * 4);

  xasm::SymbolBindings Binds;
  Binds.bindScalar("role", 0);
  Binds.bindScalar("peer", 1);
  Binds.bindSurface("out", 0);
  uint32_t Kid = R.loadKernel(R"(
    cmp.eq.1.dw p1 = role, 1
    br p1, consumer
    cmp.eq.1.dw p2 = role, 2
    br p2, looper
    ; producer
    xmit peer, vr20 = 777
    halt
  consumer:
    wait vr20
    st.1.dw (out, role, 0) = vr20
    halt
  looper:
    mov.1.dw vr1 = 0
  loop:
    add.1.dw vr1 = vr1, 1
    cmp.lt.1.dw p3 = vr1, 3000
    br p3, loop
    halt
  )",
                              Binds, "mailbox");

  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({W.Out, 4, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});

  ShredDescriptor Consumer;
  Consumer.KernelId = Kid;
  Consumer.Params = {1, 0};
  Consumer.Surfaces = Surfaces;
  W.ConsumerId = R.Device.enqueueShred(std::move(Consumer));

  ShredDescriptor Producer;
  Producer.KernelId = Kid;
  Producer.Params = {0, static_cast<int32_t>(W.ConsumerId)};
  Producer.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(Producer));

  ShredDescriptor Looper;
  Looper.KernelId = Kid;
  Looper.Params = {2, 0};
  Looper.Surfaces = Surfaces;
  R.Device.enqueueShred(std::move(Looper));
  return W;
}

} // namespace

// A dropped MISP signal must not hang the simulation: the parked `wait`
// is diagnosed with a per-wait timeout naming the shred and register.
TEST(FaultLabTest, MailboxDropDiagnosedByWaitTimeout) {
  Rig R;
  R.Device.setWaitTimeoutNs(5000.0);
  fault::FaultInjector Inj(/*Seed=*/1);
  Inj.setRate(fault::FaultKind::MailboxDrop, 1.0);
  R.arm(Inj);

  buildMailbox(R);
  auto Exit = R.Device.run(0.0);
  ASSERT_FALSE(static_cast<bool>(Exit));
  EXPECT_NE(Exit.message().find("timed out"), std::string::npos)
      << Exit.message();
  EXPECT_NE(Exit.message().find("wait"), std::string::npos) << Exit.message();
  EXPECT_GT(R.Device.stats().MailboxDropped, 0u);
}

// A duplicated MISP signal is benign: the consumer still reads the value
// exactly once and the run completes.
TEST(FaultLabTest, MailboxDupIsBenign) {
  Rig R;
  fault::FaultInjector Inj(/*Seed=*/1);
  Inj.setRate(fault::FaultKind::MailboxDup, 1.0);
  R.arm(Inj);

  MailboxWorkload W = buildMailbox(R);
  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_EQ(*Exit, RunExit::QueueDrained);
  EXPECT_EQ(R.AS.load<int32_t>(W.Out + 1 * 4), 777);
  EXPECT_GT(R.Device.stats().MailboxDuplicated, 0u);
}

//===----------------------------------------------------------------------===//
// Disarmed overhead / inertness
//===----------------------------------------------------------------------===//

// Installing an injector with every rate at zero must be observationally
// identical to running without one: same stats, same memory, no sites.
TEST(FaultLabTest, DisarmedInjectorIsInert) {
  GmaRunStats BareStats;
  std::vector<uint8_t> BareMem;
  {
    Rig R;
    mem::VirtAddr C = buildVecAdd(R);
    auto Exit = R.Device.run(0.0);
    ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
    BareStats = R.Device.stats();
    BareMem.resize(VecN * 4);
    R.AS.read(C, BareMem.data(), VecN * 4);
  }

  Rig R;
  fault::FaultInjector Inj(/*Seed=*/99);
  ASSERT_FALSE(Inj.armed());
  R.arm(Inj);
  mem::VirtAddr C = buildVecAdd(R);
  auto Exit = R.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_TRUE(R.Device.stats() == BareStats);
  std::vector<uint8_t> Mem(VecN * 4);
  R.AS.read(C, Mem.data(), VecN * 4);
  EXPECT_EQ(Mem, BareMem);
  EXPECT_TRUE(Inj.fired().empty());
  EXPECT_EQ(R.Device.stats().FaultsInjected, 0u);
}

// Two armed runs with the same seed replay the identical fired-site log;
// a different seed produces a different one.
TEST(FaultLabTest, FixedSeedReplaysIdentically) {
  auto firedLog = [](uint64_t Seed) {
    Rig R;
    fault::FaultInjector Inj =
        cantFail(fault::FaultInjector::parse("all:0.02", Seed));
    R.arm(Inj);
    mem::VirtAddr C = buildVecAdd(R);
    auto Exit = R.Device.run(0.0);
    EXPECT_TRUE(static_cast<bool>(Exit)) << Exit.message();
    expectVecAddCorrect(R, C);
    return Inj.fired();
  };

  std::vector<fault::FaultSite> A = firedLog(7), B = firedLog(7),
                                Other = firedLog(8);
  EXPECT_EQ(A.size(), B.size());
  for (size_t K = 0; K < std::min(A.size(), B.size()); ++K)
    EXPECT_TRUE(A[K] == B[K]) << A[K].str() << " vs " << B[K].str();
  EXPECT_FALSE(A.size() == Other.size() &&
               std::equal(A.begin(), A.end(), Other.begin()));
}

//===----------------------------------------------------------------------===//
// Spec parsing
//===----------------------------------------------------------------------===//

TEST(FaultLabTest, SpecParsing) {
  auto I = fault::FaultInjector::parse("atr-transient:0.25,eu-hard-fail:1");
  ASSERT_TRUE(static_cast<bool>(I)) << I.message();
  EXPECT_DOUBLE_EQ(I->rate(fault::FaultKind::AtrTransient), 0.25);
  EXPECT_DOUBLE_EQ(I->rate(fault::FaultKind::EuHardFail), 1.0);
  EXPECT_DOUBLE_EQ(I->rate(fault::FaultKind::MailboxDrop), 0.0);
  EXPECT_TRUE(I->armed());

  auto All = fault::FaultInjector::parse("all:0.5");
  ASSERT_TRUE(static_cast<bool>(All)) << All.message();
  for (unsigned K = 0; K < fault::NumFaultKinds; ++K)
    EXPECT_DOUBLE_EQ(All->rate(static_cast<fault::FaultKind>(K)), 0.5);

  EXPECT_FALSE(
      static_cast<bool>(fault::FaultInjector::parse("bogus-kind:0.5")));
  EXPECT_FALSE(
      static_cast<bool>(fault::FaultInjector::parse("atr-fatal:1.5")));
  EXPECT_FALSE(static_cast<bool>(fault::FaultInjector::parse("atr-fatal")));
}

TEST(FaultLabTest, SiteIdRendering) {
  fault::FaultSite S;
  S.Kind = fault::FaultKind::AtrTransient;
  S.Key = 0x42;
  S.Occurrence = 3;
  EXPECT_EQ(S.str(), "atr-transient@0x42#3");
}
