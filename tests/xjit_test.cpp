//===- tests/xjit_test.cpp - XJIT fast-lane differential suite ---------------===//
//
// The cycle interpreter is the oracle: every test here runs the same
// workload on both backends and requires bit-identical surface outputs
// (DESIGN.md §14). Functional counters (shreds, instructions, memory
// traffic) must also agree; timing/occupancy statistics are exempt.
//
//===----------------------------------------------------------------------===//

#include "xjit/Xjit.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ProxyExecution.h"
#include "fault/FaultInjector.h"
#include "kernels/Workloads.h"
#include "mem/AddressSpace.h"
#include "xasm/Assembler.h"
#include "xopt/Cost.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::gma;

namespace {

//===----------------------------------------------------------------------===//
// Device-level rig: one GmaDevice + production proxy + a JitEngine bound
// to it, so a workload can be dispatched to either backend directly.
//===----------------------------------------------------------------------===//

struct EngineRig {
  explicit EngineRig(GmaConfig Config = GmaConfig())
      : AS(PM), Device(Config, PM, Bus), Proxy(AS),
        Jit(Device, PM, &Proxy) {
    Device.setProxyHandler(&Proxy);
  }

  mem::VirtAddr alloc(uint64_t Bytes) {
    mem::VirtAddr Va = Allocator.allocate(Bytes);
    AS.reserve(Va, (Bytes + mem::PageSize - 1) & ~mem::PageOffsetMask,
               /*Writable=*/true, "test");
    return Va;
  }

  uint32_t loadKernel(const char *Asm, const xasm::SymbolBindings &Binds,
                      std::string Name) {
    auto K = xasm::assembleKernel(Asm, Binds);
    EXPECT_TRUE(static_cast<bool>(K)) << K.message();
    KernelImage Img;
    Img.Code = K->Code;
    Img.Name = std::move(Name);
    return Device.registerKernel(std::move(Img));
  }

  void arm(fault::FaultInjector &Inj) {
    Device.setFaultInjector(&Inj);
    Proxy.setFaultInjector(&Inj);
  }

  /// Runs \p Shreds on the fast lane (resetting device stats first, as
  /// Runtime::dispatch does for both backends).
  Expected<xjit::JitRunResult>
  runFast(uint32_t KernelId, std::vector<ShredDescriptor> Shreds,
          TimeNs DeadlineNs = 0, bool ForceChecked = false) {
    Device.resetStats();
    xjit::JitRunRequest Req;
    Req.KernelId = KernelId;
    Req.Shreds = std::move(Shreds);
    Req.DeadlineNs = DeadlineNs;
    Req.ForceChecked = ForceChecked;
    return Jit.run(Req);
  }

  mem::PhysicalMemory PM;
  mem::MemoryBus Bus;
  mem::Ia32AddressSpace AS;
  mem::VirtualAllocator Allocator;
  GmaDevice Device;
  exo::ExoProxyHandler Proxy;
  xjit::JitEngine Jit;
};

constexpr unsigned VecN = 1024;

struct VecAdd {
  uint32_t Kid = 0;
  mem::VirtAddr C = 0;
  std::vector<ShredDescriptor> Shreds;
};

/// The ATR-heavy idempotent vector-add from the FaultLab suite.
VecAdd buildVecAdd(EngineRig &R) {
  VecAdd W;
  mem::VirtAddr A = R.alloc(VecN * 4), B = R.alloc(VecN * 4);
  W.C = R.alloc(VecN * 4);
  for (unsigned K = 0; K < VecN; ++K) {
    R.AS.store<int32_t>(A + K * 4, static_cast<int32_t>(K * 3));
    R.AS.store<int32_t>(B + K * 4, static_cast<int32_t>(7000 - K));
  }
  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("A", 0);
  Binds.bindSurface("B", 1);
  Binds.bindSurface("C", 2);
  W.Kid = R.loadKernel(R"(
    shl.1.dw vr1 = i, 3
    ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
    ld.8.dw  [vr10..vr17] = (B, vr1, 0)
    add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw  (C, vr1, 0)  = [vr18..vr25]
    halt
  )",
                      Binds, "vecadd");
  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({A, VecN, 1, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  Surfaces->push_back({B, VecN, 1, isa::ElemType::I32, SurfaceMode::Input,
                       mem::GpuMemType::Cached});
  Surfaces->push_back({W.C, VecN, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});
  for (unsigned I = 0; I < VecN / 8; ++I) {
    ShredDescriptor D;
    D.KernelId = W.Kid;
    D.Params = {static_cast<int32_t>(I)};
    D.Surfaces = Surfaces;
    W.Shreds.push_back(std::move(D));
  }
  return W;
}

std::vector<uint8_t> readBytes(EngineRig &R, mem::VirtAddr Va,
                               uint64_t Bytes) {
  std::vector<uint8_t> Out(Bytes);
  R.AS.read(Va, Out.data(), Bytes);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine-level differential: same workload on both backends, identical
// surface bytes and functional counters.
//===----------------------------------------------------------------------===//

TEST(XjitEngineTest, VecAddMatchesCycleBackendBitForBit) {
  // Oracle: the cycle interpreter.
  EngineRig RC;
  VecAdd WC = buildVecAdd(RC);
  for (ShredDescriptor &D : WC.Shreds)
    RC.Device.enqueueShred(std::move(D));
  auto ExitC = RC.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(ExitC)) << ExitC.message();
  GmaRunStats Cycle = RC.Device.stats();
  std::vector<uint8_t> MemC = readBytes(RC, WC.C, VecN * 4);

  // Candidate: the fast lane on a fresh, identically-built platform.
  EngineRig RF;
  VecAdd WF = buildVecAdd(RF);
  auto Res = RF.runFast(WF.Kid, std::move(WF.Shreds));
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->Exit, RunExit::QueueDrained);
  EXPECT_TRUE(Res->ElidedChecks)
      << "vecadd under full geometry/params should verify clean";
  EXPECT_EQ(readBytes(RF, WF.C, VecN * 4), MemC);

  // Functional counters agree; only timing/occupancy are estimates.
  const GmaRunStats &Fast = Res->Stats;
  EXPECT_EQ(Fast.Backend, BackendKind::Fast);
  EXPECT_EQ(Cycle.Backend, BackendKind::Cycle);
  EXPECT_EQ(Fast.ShredsExecuted, Cycle.ShredsExecuted);
  EXPECT_EQ(Fast.Instructions, Cycle.Instructions);
  EXPECT_EQ(Fast.MemoryOps, Cycle.MemoryOps);
  EXPECT_EQ(Fast.BytesLoaded, Cycle.BytesLoaded);
  EXPECT_EQ(Fast.BytesStored, Cycle.BytesStored);
  EXPECT_EQ(Fast.IssueCycles, Cycle.IssueCycles);
}

// The XCost envelope contract on the fast lane: the functional
// IssueCycles counter — bit-identical across backends — must fall inside
// NumShreds * [min, max] of the static report. vecadd is loop-free, so
// the envelope collapses to a point and the check is exact.
TEST(XjitEngineTest, IssueCyclesFallInsideTheStaticCostEnvelope) {
  EngineRig R;
  VecAdd W = buildVecAdd(R);
  const KernelImage *K = R.Device.kernel(W.Kid);
  ASSERT_NE(K, nullptr);
  xopt::VerifySpec Spec;
  Spec.NumScalarParams = 1;
  Spec.NumSurfaceSlots = 3;
  Spec.ParamRanges[0] = xopt::Range{0, VecN / 8 - 1};
  xopt::CostReport Report = xopt::analyzeCost(K->Code, Spec, "vecadd");
  ASSERT_TRUE(Report.bounded());
  ASSERT_TRUE(Report.structureOk());

  const double Shreds = static_cast<double>(W.Shreds.size());
  auto Res = R.runFast(W.Kid, std::move(W.Shreds));
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_GE(Res->Stats.IssueCycles, Shreds * Report.minCycles());
  EXPECT_LE(Res->Stats.IssueCycles, Shreds * Report.maxCycles());
  // Loop-free kernel: the envelope is a point, so the bound is exact.
  EXPECT_DOUBLE_EQ(Report.minCycles(), Report.maxCycles());
  EXPECT_DOUBLE_EQ(Res->Stats.IssueCycles, Shreds * Report.minCycles());
}

TEST(XjitEngineTest, ForceCheckedProducesIdenticalOutput) {
  EngineRig RA, RB;
  VecAdd WA = buildVecAdd(RA), WB = buildVecAdd(RB);
  auto ResA = RA.runFast(WA.Kid, std::move(WA.Shreds));
  ASSERT_TRUE(static_cast<bool>(ResA)) << ResA.message();
  ASSERT_TRUE(ResA->ElidedChecks);
  auto ResB = RB.runFast(WB.Kid, std::move(WB.Shreds), /*DeadlineNs=*/0,
                         /*ForceChecked=*/true);
  ASSERT_TRUE(static_cast<bool>(ResB)) << ResB.message();
  EXPECT_FALSE(ResB->ElidedChecks);
  EXPECT_EQ(readBytes(RA, WA.C, VecN * 4), readBytes(RB, WB.C, VecN * 4));
}

TEST(XjitEngineTest, StatsJsonNamesTheFastBackend) {
  EngineRig R;
  VecAdd W = buildVecAdd(R);
  auto Res = R.runFast(W.Kid, std::move(W.Shreds));
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  std::string Json = runStatsJson(Res->Stats);
  EXPECT_NE(Json.find("\"backend\": \"fast\""), std::string::npos) << Json;
}

TEST(XjitEngineTest, RejectsUnknownAndSpawnKernels) {
  EngineRig R;
  auto Res = R.runFast(/*KernelId=*/99, {});
  ASSERT_FALSE(static_cast<bool>(Res));
  EXPECT_NE(Res.message().find("unregistered kernel"), std::string::npos);

  // `spawn` (dynamic shred trees) is the one construct the lane refuses.
  xasm::SymbolBindings Binds;
  Binds.bindScalar("child", 0);
  auto K = xasm::assembleKernel(R"(
    spawn vr0
    halt
  )",
                                Binds);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  EXPECT_FALSE(xjit::JitEngine::supports(K->Code));
}

//===----------------------------------------------------------------------===//
// MISP signalling (xmit/wait) on the fast lane, with and without faults.
//===----------------------------------------------------------------------===//

namespace {

struct Mailbox {
  uint32_t Kid = 0;
  mem::VirtAddr Out = 0;
  std::vector<ShredDescriptor> Shreds;
};

/// Producer xmits 777 to a consumer parked in `wait`, while a third
/// shred spins — the FaultLab mailbox scenario, team-internal ids only.
/// Fast-lane shred ids are FirstId.. in dispatch order, so the consumer
/// (first descriptor) receives id FirstId and the producer targets it.
Mailbox buildMailbox(EngineRig &R, uint32_t ConsumerId) {
  Mailbox W;
  W.Out = R.alloc(4 * 4);
  xasm::SymbolBindings Binds;
  Binds.bindScalar("role", 0);
  Binds.bindScalar("peer", 1);
  Binds.bindSurface("out", 0);
  W.Kid = R.loadKernel(R"(
    cmp.eq.1.dw p1 = role, 1
    br p1, consumer
    ; producer
    xmit peer, vr20 = 777
    halt
  consumer:
    wait vr20
    st.1.dw (out, role, 0) = vr20
    halt
  )",
                      Binds, "mailbox");
  auto Surfaces = std::make_shared<SurfaceTable>();
  Surfaces->push_back({W.Out, 4, 1, isa::ElemType::I32, SurfaceMode::Output,
                       mem::GpuMemType::Cached});
  ShredDescriptor Consumer;
  Consumer.KernelId = W.Kid;
  Consumer.Params = {1, 0};
  Consumer.Surfaces = Surfaces;
  ShredDescriptor Producer;
  Producer.KernelId = W.Kid;
  Producer.Params = {0, static_cast<int32_t>(ConsumerId)};
  Producer.Surfaces = Surfaces;
  W.Shreds.push_back(std::move(Consumer));
  W.Shreds.push_back(std::move(Producer));
  return W;
}

} // namespace

TEST(XjitSignalTest, XmitWakesWaitingConsumer) {
  EngineRig R;
  // The engine reserves ids from the device sequence: first dispatch of
  // a fresh device starts at id 1, so the consumer is shred 1.
  Mailbox W = buildMailbox(R, /*ConsumerId=*/1);
  auto Res = R.runFast(W.Kid, std::move(W.Shreds));
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->Exit, RunExit::QueueDrained);
  EXPECT_EQ(R.AS.load<int32_t>(W.Out + 1 * 4), 777);
}

TEST(XjitSignalTest, DroppedSignalDiagnosedAsTimeout) {
  EngineRig R;
  fault::FaultInjector Inj(/*Seed=*/1);
  Inj.setRate(fault::FaultKind::MailboxDrop, 1.0);
  R.arm(Inj);
  Mailbox W = buildMailbox(R, /*ConsumerId=*/1);
  auto Res = R.runFast(W.Kid, std::move(W.Shreds));
  ASSERT_FALSE(static_cast<bool>(Res));
  EXPECT_NE(Res.message().find("timed out"), std::string::npos)
      << Res.message();
  EXPECT_NE(Res.message().find("wait"), std::string::npos) << Res.message();
}

TEST(XjitSignalTest, DuplicatedSignalIsBenign) {
  EngineRig R;
  fault::FaultInjector Inj(/*Seed=*/1);
  Inj.setRate(fault::FaultKind::MailboxDup, 1.0);
  R.arm(Inj);
  Mailbox W = buildMailbox(R, /*ConsumerId=*/1);
  auto Res = R.runFast(W.Kid, std::move(W.Shreds));
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(R.AS.load<int32_t>(W.Out + 1 * 4), 777);
  EXPECT_GT(Res->Stats.MailboxDuplicated, 0u);
}

TEST(XjitSignalTest, LostSignalWithoutInjectionIsDeadlock) {
  EngineRig R;
  Mailbox W = buildMailbox(R, /*ConsumerId=*/1);
  W.Shreds.pop_back(); // no producer: the consumer waits forever
  auto Res = R.runFast(W.Kid, std::move(W.Shreds));
  ASSERT_FALSE(static_cast<bool>(Res));
  EXPECT_NE(Res.message().find("deadlock"), std::string::npos)
      << Res.message();
  EXPECT_NE(Res.message().find("vr20"), std::string::npos) << Res.message();
}

//===----------------------------------------------------------------------===//
// FaultLab composition: EU hard-fails degrade through the re-dispatch
// ladder; the output survives bit-for-bit.
//===----------------------------------------------------------------------===//

TEST(XjitFaultTest, SurvivesEuHardFailsWithCorrectOutput) {
  EngineRig R;
  fault::FaultInjector Inj(/*Seed=*/42);
  Inj.setRate(fault::FaultKind::EuHardFail, 0.01);
  R.arm(Inj);
  VecAdd W = buildVecAdd(R);
  auto Res = R.runFast(W.Kid, std::move(W.Shreds));
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_GT(Res->Stats.FaultsInjected, 0u) << "rate too low for the probes";
  EXPECT_GT(Res->Stats.ShredsRedispatched + Res->Stats.HostRedispatches, 0u);
  for (unsigned K = 0; K < VecN; ++K)
    ASSERT_EQ(R.AS.load<int32_t>(W.C + K * 4),
              static_cast<int32_t>(K * 3 + 7000 - K));
}

TEST(XjitFaultTest, SurvivesMixedInjectionWithCorrectOutput) {
  for (uint64_t Seed : {7u, 21u}) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    EngineRig R;
    fault::FaultInjector Inj =
        cantFail(fault::FaultInjector::parse("all:0.02", Seed));
    R.arm(Inj);
    VecAdd W = buildVecAdd(R);
    auto Res = R.runFast(W.Kid, std::move(W.Shreds));
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    EXPECT_GT(Inj.fired().size(), 0u);
    for (unsigned K = 0; K < VecN; ++K)
      ASSERT_EQ(R.AS.load<int32_t>(W.C + K * 4),
                static_cast<int32_t>(K * 3 + 7000 - K));
  }
}

//===----------------------------------------------------------------------===//
// CEH on the fast lane: divide-by-zero raises to the proxy, which
// emulates the instruction and resumes past it — same as the oracle.
//===----------------------------------------------------------------------===//

TEST(XjitCehTest, DivideByZeroMatchesCycleBackend) {
  auto Build = [](EngineRig &R, uint32_t &Kid, mem::VirtAddr &Out,
                  std::vector<ShredDescriptor> &Shreds) {
    // The SEH layer's resumable policy (paper Section 3.3): the handler
    // writes 0 into the offending lanes and execution continues.
    R.Proxy.setDivZeroPolicy(exo::DivZeroPolicy::WriteZero);
    Out = R.alloc(8 * 4);
    xasm::SymbolBindings Binds;
    Binds.bindScalar("num", 0);
    Binds.bindSurface("out", 0);
    // Lane-varying divisor includes a zero: the CEH path must emulate
    // the whole divide and the survivors' quotients must be exact.
    Kid = R.loadKernel(R"(
      mov.8.dw [vr10..vr17] = num
      mov.1.dw vr20 = 0
      mov.1.dw vr21 = 1
      mov.1.dw vr22 = 2
      mov.1.dw vr23 = 3
      mov.1.dw vr24 = 4
      mov.1.dw vr25 = 5
      mov.1.dw vr26 = 6
      mov.1.dw vr27 = 7
      div.8.dw [vr30..vr37] = [vr10..vr17], [vr20..vr27]
      st.8.dw (out, 0, 0) = [vr30..vr37]
      halt
    )",
                      Binds, "divz");
    auto Surfaces = std::make_shared<SurfaceTable>();
    Surfaces->push_back({Out, 8, 1, isa::ElemType::I32, SurfaceMode::Output,
                         mem::GpuMemType::Cached});
    ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {5040};
    D.Surfaces = Surfaces;
    Shreds.push_back(std::move(D));
  };

  EngineRig RC;
  uint32_t KidC;
  mem::VirtAddr OutC;
  std::vector<ShredDescriptor> ShredsC;
  Build(RC, KidC, OutC, ShredsC);
  for (ShredDescriptor &D : ShredsC)
    RC.Device.enqueueShred(std::move(D));
  auto ExitC = RC.Device.run(0.0);
  ASSERT_TRUE(static_cast<bool>(ExitC)) << ExitC.message();
  ASSERT_GT(RC.Device.stats().ExceptionsHandled, 0u);

  EngineRig RF;
  uint32_t KidF;
  mem::VirtAddr OutF;
  std::vector<ShredDescriptor> ShredsF;
  Build(RF, KidF, OutF, ShredsF);
  auto Res = RF.runFast(KidF, std::move(ShredsF));
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_GT(Res->Stats.ExceptionsHandled, 0u);
  EXPECT_EQ(readBytes(RF, OutF, 8 * 4), readBytes(RC, OutC, 8 * 4));
}

//===----------------------------------------------------------------------===//
// Deadline preemption at fast-lane safepoints.
//===----------------------------------------------------------------------===//

TEST(XjitDeadlineTest, PreemptsWhenEstimatePassesDeadline) {
  EngineRig R;
  VecAdd W = buildVecAdd(R);
  size_t Team = W.Shreds.size();
  auto Res = R.runFast(W.Kid, std::move(W.Shreds), /*DeadlineNs=*/1.0);
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->Exit, RunExit::DeadlinePreempted);
  EXPECT_GT(Res->Stats.ShredsPreempted, 0u);
  EXPECT_LT(Res->Stats.ShredsExecuted, Team);
  EXPECT_EQ(Res->Stats.FinishNs, 1.0);
}

//===----------------------------------------------------------------------===//
// chi-level differential: every Table 2 kernel, cycle vs fast, via the
// Feature::Backend selector.
//===----------------------------------------------------------------------===//

namespace {

using kernels::MediaWorkload;

struct WorkloadRig {
  explicit WorkloadRig(std::unique_ptr<MediaWorkload> WL)
      : Workload(std::move(WL)), RT(Platform) {
    chi::ProgramBuilder PB;
    cantFail(Workload->compile(PB));
    Binary = PB.take();
    cantFail(RT.loadBinary(Binary));
    cantFail(Workload->setup(RT));
  }

  std::unique_ptr<MediaWorkload> Workload;
  exo::ExoPlatform Platform;
  chi::Runtime RT;
  fatbin::FatBinary Binary;
};

std::unique_ptr<MediaWorkload> makeSmallWorkload(int Index) {
  using namespace kernels;
  switch (Index) {
  case 0:
    return createLinearFilter(64, 32);
  case 1:
    return createSepiaTone(64, 32);
  case 2:
    return createFGT(64, 32);
  case 3:
    return createBicubic(64, 32, 3);
  case 4:
    return createKalman(64, 32, 3);
  case 5:
    return createFMD(64, 32, 12);
  case 6:
    return createAlphaBlend(64, 32, 3);
  case 7:
    return createBOB(64, 32, 4);
  case 8:
    return createADVDI(64, 32, 4);
  default:
    return createProcAmp(64, 32, 3);
  }
}

std::string kernelCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"LinearFilter", "SepiaTone", "FGT",
                                "Bicubic",      "Kalman",    "FMD",
                                "AlphaBlend",   "BOB",       "ADVDI",
                                "ProcAmp"};
  return Names[Info.param];
}

/// Full dispatch on \p Backend: asserts the run actually executed on
/// the expected backend and that the shared output is bit-identical to
/// the IA32 host reference (MediaWorkload::compareSharedToReference
/// compares every visible element for exact equality, so two backends
/// that both pass are bit-identical to each other).
void runOn(WorkloadRig &Rig, int64_t Backend, BackendKind Expect) {
  Rig.RT.setFeature(chi::Feature::Backend, Backend);
  MediaWorkload &WL = *Rig.Workload;
  auto H = WL.dispatchDevice(Rig.RT, 0, WL.totalStrips());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  const chi::RegionStats *St = Rig.RT.regionStats(*H);
  ASSERT_NE(St, nullptr);
  EXPECT_EQ(St->Device.Backend, Expect)
      << WL.name() << ": wrong backend for selector " << Backend;
  Error E = WL.compareSharedToReference(Rig.RT);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
}

} // namespace

class XjitTable2Test : public ::testing::TestWithParam<int> {};

// The load-bearing contract: for every Table 2 kernel, the fast lane —
// in both elided and forced-check modes — reproduces the cycle backend's
// exact output surface (all three runs must equal the bit-exact host
// reference, hence each other).
TEST_P(XjitTable2Test, FastLaneBitIdenticalToCycleOracle) {
  WorkloadRig Rig(makeSmallWorkload(GetParam()));
  cantFail(Rig.Workload->hostCompute(0, Rig.Workload->totalStrips()));
  runOn(Rig, 0, BackendKind::Cycle);
  runOn(Rig, 1, BackendKind::Fast);
  runOn(Rig, 2, BackendKind::Fast);
}

// `--inject` composition at the runtime level: the fast lane completes
// every Table 2 kernel correctly under mixed fault injection.
TEST_P(XjitTable2Test, FastLaneSurvivesInjectionWithCorrectOutput) {
  WorkloadRig Rig(makeSmallWorkload(GetParam()));
  fault::FaultInjector Inj =
      cantFail(fault::FaultInjector::parse("all:0.02", /*Seed=*/7));
  Rig.Platform.armFaultInjection(&Inj);
  Rig.RT.setFeature(chi::Feature::Backend, 1);
  Error E = Rig.Workload->verify(Rig.RT);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
}

INSTANTIATE_TEST_SUITE_P(AllKernels, XjitTable2Test, ::testing::Range(0, 10),
                         kernelCaseName);

//===----------------------------------------------------------------------===//
// Geometry sweep: partial tiles and non-square shapes stay bit-identical.
//===----------------------------------------------------------------------===//

struct SizeCase {
  uint32_t W, H, Frames;
};

class XjitSizeSweepTest
    : public ::testing::TestWithParam<std::tuple<int, SizeCase>> {};

TEST_P(XjitSizeSweepTest, BitIdenticalAcrossGeometries) {
  auto [Kernel, Size] = GetParam();
  auto Make = [Kernel = Kernel, Size = Size] {
    using namespace kernels;
    switch (Kernel) {
    case 0:
      return createLinearFilter(Size.W, Size.H);
    case 1:
      return createBOB(Size.W, Size.H, Size.Frames);
    case 2:
      return createBicubic(Size.W, Size.H, Size.Frames);
    default:
      return createKalman(Size.W, Size.H, Size.Frames);
    }
  };
  WorkloadRig Rig(Make());
  cantFail(Rig.Workload->hostCompute(0, Rig.Workload->totalStrips()));
  runOn(Rig, 0, BackendKind::Cycle);
  runOn(Rig, 1, BackendKind::Fast);
}

namespace {

std::vector<std::tuple<int, SizeCase>> sizeSweepCases() {
  const SizeCase Sizes[] = {
      {40, 24, 2}, {72, 40, 3}, {104, 56, 2}, {256, 18, 2}};
  std::vector<std::tuple<int, SizeCase>> Out;
  for (int Kernel = 0; Kernel < 4; ++Kernel)
    for (const SizeCase &S : Sizes)
      Out.emplace_back(Kernel, S);
  return Out;
}

std::string sizeCaseName(
    const ::testing::TestParamInfo<std::tuple<int, SizeCase>> &Info) {
  static const char *Names[] = {"LinearFilter", "BOB", "Bicubic", "Kalman"};
  const SizeCase &S = std::get<1>(Info.param);
  return std::string(Names[std::get<0>(Info.param)]) + "_" +
         std::to_string(S.W) + "x" + std::to_string(S.H) + "x" +
         std::to_string(S.Frames);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Geometries, XjitSizeSweepTest,
                         ::testing::ValuesIn(sizeSweepCases()), sizeCaseName);

//===----------------------------------------------------------------------===//
// Backend selection and fallback gating in the runtime.
//===----------------------------------------------------------------------===//

TEST(XjitSelectionTest, DefaultBackendIsCycle) {
  WorkloadRig Rig(makeSmallWorkload(1));
  MediaWorkload &WL = *Rig.Workload;
  auto H = WL.dispatchDevice(Rig.RT, 0, WL.totalStrips());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  EXPECT_EQ(Rig.RT.regionStats(*H)->Device.Backend, BackendKind::Cycle);
}

TEST(XjitSelectionTest, ExecutionHooksForceCycleFallback) {
  WorkloadRig Rig(makeSmallWorkload(1));
  Rig.RT.setFeature(chi::Feature::Backend, 1);
  uint64_t Steps = 0;
  Rig.Platform.device().setStepHook([&](uint32_t, uint32_t, uint32_t) {
    ++Steps;
    return StepAction::Continue;
  });
  MediaWorkload &WL = *Rig.Workload;
  auto H = WL.dispatchDevice(Rig.RT, 0, WL.totalStrips());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  EXPECT_EQ(Rig.RT.regionStats(*H)->Device.Backend, BackendKind::Cycle);
  EXPECT_GT(Steps, 0u) << "the hook must actually observe execution";
}

TEST(XjitSelectionTest, BackendSwitchesPerDispatchMidSession) {
  // One session, alternating backends: the engine and device share the
  // kernel registry and shred-id sequence, so runs interleave freely.
  WorkloadRig Rig(makeSmallWorkload(0));
  MediaWorkload &WL = *Rig.Workload;
  cantFail(WL.hostCompute(0, WL.totalStrips()));
  for (int64_t Sel : {0, 1, 0, 2}) {
    SCOPED_TRACE("backend=" + std::to_string(Sel));
    Rig.RT.setFeature(chi::Feature::Backend, Sel);
    auto H = WL.dispatchDevice(Rig.RT, 0, WL.totalStrips());
    ASSERT_TRUE(static_cast<bool>(H)) << H.message();
    EXPECT_EQ(Rig.RT.regionStats(*H)->Device.Backend,
              Sel == 0 ? BackendKind::Cycle : BackendKind::Fast);
    Error E = WL.compareSharedToReference(Rig.RT);
    EXPECT_FALSE(static_cast<bool>(E)) << E.message();
  }
}

TEST(XjitSelectionTest, ParseBackendNameIsStrict) {
  EXPECT_EQ(parseBackendName("cycle"), BackendKind::Cycle);
  EXPECT_EQ(parseBackendName("fast"), BackendKind::Fast);
  EXPECT_FALSE(parseBackendName("jit").has_value());
  EXPECT_FALSE(parseBackendName("").has_value());
  EXPECT_FALSE(parseBackendName("Fast").has_value());
}
