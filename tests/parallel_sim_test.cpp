//===- tests/parallel_sim_test.cpp - Parallel-simulation determinism ---------===//
//
// Regression tests for the determinism contract of the epoch-based
// parallel GMA engine (DESIGN.md, "Parallel simulation & determinism
// contract"): for any GmaConfig::SimThreads value the simulation must
// produce bit-identical run statistics, memory contents, and shred
// traces, because all shared-resource arbitration happens at barriers in
// an order that never depends on the worker count. Each workload runs at
// 1, 2, 4, and 8 sim threads on a fresh platform and every observable is
// compared against the serial run.
//
//===----------------------------------------------------------------------===//

#include "gma/GmaDevice.h"

#include "mem/AddressSpace.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace exochi;
using namespace exochi::gma;

namespace {

/// ATR/CEH proxy mirroring the one in gma_test.cpp: demand-pages through
/// an Ia32AddressSpace and emulates f64 adds.
class TestProxy : public ProxySignalHandler {
public:
  explicit TestProxy(mem::Ia32AddressSpace &AS) : AS(AS) {}

  Expected<mem::TimeNs> onTranslationMiss(mem::VirtAddr Va, bool IsWrite,
                                          mem::GpuMemType MemType,
                                          mem::Tlb &Tlb) override {
    ++Misses;
    mem::PageFault F;
    auto T = AS.translate(Va, IsWrite, &F);
    if (!T) {
      if (!AS.handleFault(F))
        return Error::make("unserviceable fault");
      T = AS.translate(Va, IsWrite);
      if (!T)
        return T.takeError();
    }
    auto Pte = mem::transcodePteIa32ToGpu(T->Pte, MemType);
    if (!Pte)
      return Pte.takeError();
    Tlb.insert(mem::pageNumber(Va), *Pte);
    return 500.0;
  }

  Expected<mem::TimeNs> onException(const ExceptionInfo &Info,
                                    ShredRegView &Regs) override {
    ++Exceptions;
    if (Info.Kind != ExceptionKind::UnsupportedType ||
        Info.Instr.Op != isa::Opcode::Add ||
        Info.Instr.Ty != isa::ElemType::F64)
      return Error::make("test proxy only emulates f64 add");
    const isa::Instruction &I = Info.Instr;
    for (unsigned L = 0; L < I.Width; ++L) {
      auto ReadF64 = [&](const isa::Operand &O) {
        unsigned R = O.Reg0 + 2 * L;
        uint64_t Bits = Regs.readReg(R) |
                        (static_cast<uint64_t>(Regs.readReg(R + 1)) << 32);
        double D;
        std::memcpy(&D, &Bits, 8);
        return D;
      };
      double Result = ReadF64(I.Src0) + ReadF64(I.Src1);
      uint64_t Bits;
      std::memcpy(&Bits, &Result, 8);
      unsigned R = I.Dst.Reg0 + 2 * L;
      Regs.writeReg(R, static_cast<uint32_t>(Bits));
      Regs.writeReg(R + 1, static_cast<uint32_t>(Bits >> 32));
    }
    return 2000.0;
  }

  mem::Ia32AddressSpace &AS;
  unsigned Misses = 0;
  unsigned Exceptions = 0;
};

/// Fresh platform per run: nothing may carry over between thread counts.
struct Rig {
  explicit Rig(GmaConfig Config = GmaConfig())
      : AS(PM), Device(Config, PM, Bus), Proxy(AS) {
    Device.setProxyHandler(&Proxy);
    Device.setTracer(&Tracer);
  }

  mem::VirtAddr alloc(uint64_t Bytes) {
    mem::VirtAddr Va = Allocator.allocate(Bytes);
    AS.reserve(Va, (Bytes + mem::PageSize - 1) & ~mem::PageOffsetMask,
               /*Writable=*/true, "test");
    return Va;
  }

  uint32_t loadKernel(const char *Asm, const xasm::SymbolBindings &Binds,
                      std::string Name) {
    auto K = xasm::assembleKernel(Asm, Binds);
    EXPECT_TRUE(static_cast<bool>(K)) << K.message();
    KernelImage Img;
    Img.Code = K->Code;
    Img.Name = std::move(Name);
    return Device.registerKernel(std::move(Img));
  }

  mem::PhysicalMemory PM;
  mem::MemoryBus Bus;
  mem::Ia32AddressSpace AS;
  mem::VirtualAllocator Allocator;
  GmaDevice Device;
  TestProxy Proxy;
  TraceRecorder Tracer;
};

/// Everything a run makes observable: stats, surface memory, and trace.
struct Capture {
  GmaRunStats Stats;
  std::vector<uint8_t> Memory;
  std::vector<ShredSpan> Spans;
  unsigned ProxyMisses = 0;
  unsigned ProxyExceptions = 0;
};

Capture capture(Rig &R, mem::VirtAddr Base, uint64_t Bytes) {
  Capture C;
  C.Stats = R.Device.stats();
  C.Memory.resize(Bytes);
  R.AS.read(Base, C.Memory.data(), Bytes);
  C.Spans = R.Tracer.spans();
  C.ProxyMisses = R.Proxy.Misses;
  C.ProxyExceptions = R.Proxy.Exceptions;
  return C;
}

/// Bit-exact comparison of two runs (doubles compared with ==: the
/// contract is bit-identity, not approximate equality).
void expectIdentical(const Capture &Serial, const Capture &Par,
                     unsigned Threads) {
  SCOPED_TRACE("SimThreads=" + std::to_string(Threads));
  EXPECT_TRUE(Serial.Stats == Par.Stats)
      << "stats diverge: instrs " << Serial.Stats.Instructions << " vs "
      << Par.Stats.Instructions << ", finish " << Serial.Stats.FinishNs
      << " vs " << Par.Stats.FinishNs << ", cache "
      << Serial.Stats.CacheHits << "/" << Serial.Stats.CacheMisses
      << " vs " << Par.Stats.CacheHits << "/" << Par.Stats.CacheMisses;
  EXPECT_EQ(Serial.Memory, Par.Memory);
  EXPECT_EQ(Serial.ProxyMisses, Par.ProxyMisses);
  EXPECT_EQ(Serial.ProxyExceptions, Par.ProxyExceptions);
  ASSERT_EQ(Serial.Spans.size(), Par.Spans.size());
  for (size_t K = 0; K < Serial.Spans.size(); ++K) {
    const ShredSpan &A = Serial.Spans[K], &B = Par.Spans[K];
    EXPECT_EQ(A.Eu, B.Eu) << "span " << K;
    EXPECT_EQ(A.Slot, B.Slot) << "span " << K;
    EXPECT_EQ(A.ShredId, B.ShredId) << "span " << K;
    EXPECT_EQ(A.Kernel, B.Kernel) << "span " << K;
    EXPECT_EQ(A.StartNs, B.StartNs) << "span " << K;
    EXPECT_EQ(A.EndNs, B.EndNs) << "span " << K;
  }
}

constexpr unsigned ThreadCounts[] = {1, 2, 4, 8};

} // namespace

//===----------------------------------------------------------------------===//
// Workload 1: ATR-miss-heavy vector add
//===----------------------------------------------------------------------===//

// Many shreds streaming over multiple pages: every page's first touch
// raises an ATR proxy call, and the shared cache, bus, and TLB are under
// constant contention — the arbitration-order stress case.
TEST(ParallelSimTest, VectorAddWithAtrMissesIsBitIdentical) {
  constexpr unsigned N = 4096; // 16 KiB per surface = 4 pages each
  Capture Serial;

  for (unsigned Threads : ThreadCounts) {
    Rig R;
    R.Device.setSimThreads(Threads);
    mem::VirtAddr A = R.alloc(N * 4), B = R.alloc(N * 4), C = R.alloc(N * 4);
    for (unsigned K = 0; K < N; ++K) {
      R.AS.store<int32_t>(A + K * 4, static_cast<int32_t>(K * 3));
      R.AS.store<int32_t>(B + K * 4, static_cast<int32_t>(7000 - K));
    }

    xasm::SymbolBindings Binds;
    Binds.bindScalar("i", 0);
    Binds.bindSurface("A", 0);
    Binds.bindSurface("B", 1);
    Binds.bindSurface("C", 2);
    uint32_t Kid = R.loadKernel(R"(
      shl.1.dw vr1 = i, 3
      ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
      ld.8.dw  [vr10..vr17] = (B, vr1, 0)
      add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
      st.8.dw  (C, vr1, 0)  = [vr18..vr25]
      halt
    )",
                                Binds, "vecadd");

    auto Surfaces = std::make_shared<SurfaceTable>();
    Surfaces->push_back({A, N, 1, isa::ElemType::I32, SurfaceMode::Input,
                         mem::GpuMemType::Cached});
    Surfaces->push_back({B, N, 1, isa::ElemType::I32, SurfaceMode::Input,
                         mem::GpuMemType::Cached});
    Surfaces->push_back({C, N, 1, isa::ElemType::I32, SurfaceMode::Output,
                         mem::GpuMemType::Cached});
    for (unsigned I = 0; I < N / 8; ++I) {
      ShredDescriptor D;
      D.KernelId = Kid;
      D.Params = {static_cast<int32_t>(I)};
      D.Surfaces = Surfaces;
      R.Device.enqueueShred(std::move(D));
    }

    auto Exit = R.Device.run(0.0);
    ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
    EXPECT_EQ(*Exit, RunExit::QueueDrained);
    EXPECT_GT(R.Device.stats().TlbMisses, 0u);
    for (unsigned K = 0; K < N; ++K)
      ASSERT_EQ(R.AS.load<int32_t>(C + K * 4),
                static_cast<int32_t>(K * 3 + 7000 - K))
          << "element " << K;

    Capture Cap = capture(R, C, N * 4);
    if (Threads == 1)
      Serial = Cap;
    else
      expectIdentical(Serial, Cap, Threads);
  }
}

//===----------------------------------------------------------------------===//
// Workload 2: CEH exceptions (f64 emulation through the proxy)
//===----------------------------------------------------------------------===//

// Every shred raises an unsupported-type exception that the proxy
// emulates; exception resolution order feeds back into timing through
// the proxy stall, so misordering across threads would change stats.
TEST(ParallelSimTest, CehExceptionStormIsBitIdentical) {
  constexpr unsigned Shreds = 24;
  Capture Serial;

  for (unsigned Threads : ThreadCounts) {
    Rig R;
    R.Device.setSimThreads(Threads);
    // Per shred: 4 f64 slots (in a, in b, out, pad).
    mem::VirtAddr Buf = R.alloc(Shreds * 4 * 8);
    for (unsigned S = 0; S < Shreds; ++S) {
      double A = 1.25 * (S + 1), B = 2.5 + S;
      R.AS.write(Buf + (S * 4 + 0) * 8, &A, 8);
      R.AS.write(Buf + (S * 4 + 1) * 8, &B, 8);
    }

    xasm::SymbolBindings Binds;
    Binds.bindScalar("base", 0);
    Binds.bindSurface("buf", 0);
    uint32_t Kid = R.loadKernel(R"(
      add.1.dw vr30 = base, 0
      add.1.dw vr31 = base, 1
      add.1.dw vr32 = base, 2
      ld.1.df [vr0..vr1] = (buf, vr30, 0)
      ld.1.df [vr2..vr3] = (buf, vr31, 0)
      add.1.df [vr4..vr5] = [vr0..vr1], [vr2..vr3]
      st.1.df (buf, vr32, 0) = [vr4..vr5]
      halt
    )",
                                Binds, "f64add");

    auto Surfaces = std::make_shared<SurfaceTable>();
    Surfaces->push_back({Buf, Shreds * 4, 1, isa::ElemType::F64,
                         SurfaceMode::InputOutput, mem::GpuMemType::Cached});
    for (unsigned S = 0; S < Shreds; ++S) {
      ShredDescriptor D;
      D.KernelId = Kid;
      D.Params = {static_cast<int32_t>(S * 4)};
      D.Surfaces = Surfaces;
      R.Device.enqueueShred(std::move(D));
    }

    auto Exit = R.Device.run(0.0);
    ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
    EXPECT_EQ(R.Device.stats().ExceptionsHandled, Shreds);
    for (unsigned S = 0; S < Shreds; ++S) {
      double Result = 0;
      R.AS.read(Buf + (S * 4 + 2) * 8, &Result, 8);
      ASSERT_DOUBLE_EQ(Result, 1.25 * (S + 1) + 2.5 + S) << "shred " << S;
    }

    Capture Cap = capture(R, Buf, Shreds * 4 * 8);
    if (Threads == 1)
      Serial = Cap;
    else
      expectIdentical(Serial, Cap, Threads);
  }
}

//===----------------------------------------------------------------------===//
// Workload 3: xmit/wait pairs + spawn + shared sampler
//===----------------------------------------------------------------------===//

// Cross-shred synchronization, dynamic shred creation, and the shared
// fixed-function sampler in one run: every category of buffered
// interaction the resolve phase arbitrates.
TEST(ParallelSimTest, SyncSpawnSamplerMixIsBitIdentical) {
  constexpr unsigned Pairs = 8;
  Capture Serial;

  for (unsigned Threads : ThreadCounts) {
    Rig R;
    R.Device.setSimThreads(Threads);
    // tex: 2x2 RGBA8 gradient; out: one i32 per pair + one per child.
    mem::VirtAddr Tex = R.alloc(4 * 4);
    R.AS.store<uint32_t>(Tex + 0, 0xff000000u);
    R.AS.store<uint32_t>(Tex + 4, 0xff0000c8u);
    R.AS.store<uint32_t>(Tex + 8, 0xff00c800u);
    R.AS.store<uint32_t>(Tex + 12, 0xff00c8c8u);
    mem::VirtAddr Out = R.alloc(4 * Pairs * 4);

    // role 0 (producer, slot 2P+1): sample, store the red channel, send
    // 777 to its consumer, spawn a child tagged 1000+slot. role 1
    // (consumer, slot 2P): wait for the value and store it. Spawned
    // children arrive with a single param >= 1000: they sample and store
    // at slot (tag - 1000) + 2*Pairs.
    xasm::SymbolBindings Binds;
    Binds.bindScalar("role", 0);
    Binds.bindScalar("peer", 1);
    Binds.bindScalar("slot", 2);
    Binds.bindSurface("tex", 0);
    Binds.bindSurface("out", 1);
    uint32_t Kid = R.loadKernel(R"(
      cmp.ge.1.dw p3 = role, 1000
      br p3, child
      cmp.eq.1.dw p1 = role, 1
      br p1, consumer
      ; producer
      mov.1.f vr4 = 0.5
      mov.1.f vr5 = 0.5
      sample.4.f [vr8..vr11] = (tex, vr4, vr5)
      cvt.1.dw.f vr16 = vr8
      xmit peer, vr20 = 777
      add.1.dw vr30 = slot, 1000
      spawn vr30
      st.1.dw (out, slot, 0) = vr16
      halt
    consumer:
      wait vr20
      st.1.dw (out, slot, 0) = vr20
      halt
    child:
      mov.1.f vr4 = 0.5
      mov.1.f vr5 = 0.5
      sample.4.f [vr8..vr11] = (tex, vr4, vr5)
      cvt.1.dw.f vr16 = vr8
      sub.1.dw vr2 = role, 1000
      add.1.dw vr2 = vr2, 16
      st.1.dw (out, vr2, 0) = vr16
      halt
    )",
                                Binds, "mix");

    auto Surfaces = std::make_shared<SurfaceTable>();
    Surfaces->push_back({Tex, 2, 2, isa::ElemType::I32, SurfaceMode::Input,
                         mem::GpuMemType::Cached});
    Surfaces->push_back({Out, 4 * Pairs, 1, isa::ElemType::I32,
                         SurfaceMode::Output, mem::GpuMemType::Cached});

    for (unsigned P = 0; P < Pairs; ++P) {
      ShredDescriptor Consumer;
      Consumer.KernelId = Kid;
      Consumer.Params = {1, 0, static_cast<int32_t>(2 * P)};
      Consumer.Surfaces = Surfaces;
      uint32_t ConsumerId = R.Device.enqueueShred(std::move(Consumer));

      ShredDescriptor Producer;
      Producer.KernelId = Kid;
      Producer.Params = {0, static_cast<int32_t>(ConsumerId),
                         static_cast<int32_t>(2 * P + 1)};
      Producer.Surfaces = Surfaces;
      R.Device.enqueueShred(std::move(Producer));
    }

    auto Exit = R.Device.run(0.0);
    ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
    EXPECT_EQ(*Exit, RunExit::QueueDrained);
    // Pairs producers + Pairs consumers + Pairs spawned children.
    EXPECT_EQ(R.Device.stats().ShredsExecuted, 3u * Pairs);
    EXPECT_EQ(R.Device.stats().SamplerOps, 2u * Pairs);
    for (unsigned P = 0; P < Pairs; ++P)
      ASSERT_EQ(R.AS.load<int32_t>(Out + (2 * P) * 4), 777) << "pair " << P;

    Capture Cap = capture(R, Out, 4 * Pairs * 4);
    if (Threads == 1)
      Serial = Cap;
    else
      expectIdentical(Serial, Cap, Threads);
  }
}
