//===- tests/net_test.cpp - ExoNet socket front end ---------------------------===//
//
// Tests for the ExoNet layer (DESIGN.md §13): wire-protocol round-trips
// and strict rejection, the TCP and unix-socket end-to-end paths through
// serve::Server, zero-budget rejection over the wire, backpressure by
// unread sockets, request coalescing, malformed-frame survival, the
// multi-client concurrency soak (the TSan lane for this label), and the
// 8-seed chaos soak replayed through the socket path bit-identically at
// SimThreads 1 and 4.
//
//===----------------------------------------------------------------------===//

#include "net/NetClient.h"
#include "net/NetServer.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"
#include "fault/FaultInjector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace exochi;
using namespace exochi::net;

namespace {

constexpr const char *VecAddAsm = R"(
  shl.1.dw vr1 = i, 3
  ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
  ld.8.dw  [vr10..vr17] = (B, vr1, 0)
  add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw  (C, vr1, 0)  = [vr18..vr25]
  halt
)";

/// Platform + runtime + vecadd + a NetServer event loop on a background
/// thread, listening on an ephemeral TCP port.
struct NetRig {
  exo::ExoPlatform Platform;
  chi::Runtime RT;
  std::unique_ptr<NetServer> Server;
  std::thread Loop;
  uint16_t Port = 0;

  explicit NetRig(NetServerConfig NC = {}, fault::FaultInjector *Inj = nullptr,
                  unsigned SimThreads = 1, const std::string &UnixPath = "")
      : RT(Platform) {
    Platform.setSimThreads(SimThreads);
    if (Inj)
      Platform.armFaultInjection(Inj);
    chi::ProgramBuilder PB;
    cantFail(PB.addXgmaKernel("vecadd", VecAddAsm, {"i"}, {"A", "B", "C"})
                 .takeError());
    cantFail(RT.loadBinary(PB.take()));
    Server = std::make_unique<NetServer>(RT, NC, Inj);
    Port = cantFail(Server->listenTcp(0));
    // Listeners must exist before the loop thread: run() reads the
    // listener list without locks.
    if (!UnixPath.empty())
      cantFail(Server->listenUnix(UnixPath));
    Loop = std::thread([this] { Server->run(); });
  }

  /// Stops the loop; NetServer stats accessors are valid afterwards.
  void shutdown() {
    if (!Loop.joinable())
      return;
    Server->stop();
    Loop.join();
  }

  ~NetRig() { shutdown(); }
};

/// A 32-bit little-endian surface payload: element K = Fn(K).
std::vector<uint8_t> surfaceWords(unsigned N, int32_t (*Fn)(unsigned)) {
  std::vector<uint8_t> Out;
  Out.reserve(N * 4);
  for (unsigned K = 0; K < N; ++K) {
    uint32_t V = static_cast<uint32_t>(Fn(K));
    for (int B = 0; B < 4; ++B)
      Out.push_back(static_cast<uint8_t>(V >> (B * 8)));
  }
  return Out;
}

/// Declares the vecadd surfaces on \p C: A[k]=k, B[k]=10k, C zeroed.
void declareVecAddSurfaces(NetClient &C, unsigned N = 64) {
  wire::SurfaceMsg A;
  A.Name = "A";
  A.Width = N;
  A.Mode = 0;
  A.Fill = wire::SurfaceFill::Data;
  A.Data = surfaceWords(N, [](unsigned K) { return static_cast<int32_t>(K); });
  ASSERT_FALSE(static_cast<bool>(C.surface(A)));
  wire::SurfaceMsg B = A;
  B.Name = "B";
  B.Data =
      surfaceWords(N, [](unsigned K) { return static_cast<int32_t>(K * 10); });
  ASSERT_FALSE(static_cast<bool>(C.surface(B)));
  wire::SurfaceMsg Out;
  Out.Name = "C";
  Out.Width = N;
  Out.Mode = 1;
  Out.Fill = wire::SurfaceFill::Zero;
  ASSERT_FALSE(static_cast<bool>(C.surface(Out)));
}

wire::SubmitMsg vecAddSubmit(uint64_t Tag, uint32_t Shreds = 8,
                             uint8_t Flags = 0) {
  wire::SubmitMsg M;
  M.Tag = Tag;
  M.Flags = Flags;
  M.Shreds = Shreds;
  M.Kernel = "vecadd";
  M.Params = {{"i", wire::ParamKind::Shred, 0}};
  M.Bind = {"A", "B", "C"};
  return M;
}

/// Fetches surface "C" and checks element K == 11*K over [0, N).
void expectVecAddResult(NetClient &C, unsigned N = 64) {
  auto D = C.fetch("C");
  ASSERT_TRUE(static_cast<bool>(D)) << D.message();
  ASSERT_EQ(D->Data.size(), N * 4u);
  for (unsigned K = 0; K < N; ++K) {
    uint32_t V = 0;
    for (int B = 0; B < 4; ++B)
      V |= static_cast<uint32_t>(D->Data[K * 4 + B]) << (B * 8);
    ASSERT_EQ(static_cast<int32_t>(V), static_cast<int32_t>(K * 11))
        << "element " << K;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire round-trips
//===----------------------------------------------------------------------===//

TEST(WireTest, SubmitRoundTripsThroughParser) {
  wire::SubmitMsg M;
  M.Tag = 0xdeadbeefcafeull;
  M.Pri = 2;
  M.Flags = wire::SubmitHold;
  M.DeadlineCycles = 1234;
  M.Shreds = 8;
  M.Kernel = "vecadd";
  M.Params = {{"i", wire::ParamKind::Shred, 0},
              {"base", wire::ParamKind::ShredOffset, 16},
              {"gain", wire::ParamKind::Value, -7}};
  M.Bind = {"A", "B", "C"};
  wire::SurfaceMsg Up;
  Up.Name = "A";
  Up.Width = 8;
  Up.Fill = wire::SurfaceFill::Data;
  Up.Data.assign(32, 0xab);
  M.Uploads = {Up};

  wire::FrameParser P;
  P.feed(wire::encode(M));
  auto F = P.next();
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->Type, wire::MsgType::Submit);
  EXPECT_FALSE(P.next().has_value());
  EXPECT_EQ(P.buffered(), 0u);

  auto D = wire::decodeSubmit(F->Body);
  ASSERT_TRUE(static_cast<bool>(D)) << D.message();
  EXPECT_EQ(D->Tag, M.Tag);
  EXPECT_EQ(D->Pri, M.Pri);
  EXPECT_EQ(D->Flags, M.Flags);
  EXPECT_EQ(D->DeadlineCycles, M.DeadlineCycles);
  EXPECT_EQ(D->Shreds, M.Shreds);
  EXPECT_EQ(D->Kernel, M.Kernel);
  ASSERT_EQ(D->Params.size(), 3u);
  EXPECT_EQ(D->Params[1].Name, "base");
  EXPECT_EQ(D->Params[1].Kind, wire::ParamKind::ShredOffset);
  EXPECT_EQ(D->Params[1].Value, 16);
  EXPECT_EQ(D->Params[2].Value, -7);
  EXPECT_EQ(D->Bind, M.Bind);
  ASSERT_EQ(D->Uploads.size(), 1u);
  EXPECT_EQ(D->Uploads[0].Name, "A");
  EXPECT_EQ(D->Uploads[0].Data, Up.Data);
}

TEST(WireTest, ResultRoundTripPreservesClocks) {
  wire::ResultMsg M;
  M.Tag = 7;
  M.JobId = 42;
  M.State = static_cast<uint8_t>(serve::JobState::DeadlinePreempted);
  M.Reason = static_cast<uint8_t>(serve::RejectReason::None);
  M.BatchSize = 4;
  M.ShredsPreempted = 3;
  M.SubmitNs = 1.25;
  M.StartNs = 2.5;
  M.EndNs = 1e9 + 0.125;
  M.Error = "";
  auto Enc = wire::encode(M);
  wire::FrameParser P;
  P.feed(Enc);
  auto F = P.next();
  ASSERT_TRUE(F.has_value());
  auto D = wire::decodeResult(F->Body);
  ASSERT_TRUE(static_cast<bool>(D)) << D.message();
  EXPECT_EQ(D->BatchSize, 4u);
  EXPECT_EQ(D->ShredsPreempted, 3u);
  EXPECT_EQ(D->SubmitNs, 1.25);
  EXPECT_EQ(D->EndNs, 1e9 + 0.125);
}

TEST(WireTest, StrictDecodeRejectsTrailingGarbage) {
  auto Enc = wire::encode(wire::RunMsg{3});
  wire::FrameParser P;
  P.feed(Enc);
  auto F = P.next();
  ASSERT_TRUE(F.has_value());
  F->Body.push_back(0); // one trailing byte
  auto D = wire::decodeRun(F->Body);
  EXPECT_FALSE(static_cast<bool>(D));
}

TEST(WireTest, ParserPoisonsOnBadMagicAndStaysPoisoned) {
  wire::FrameParser P;
  std::vector<uint8_t> Junk = {'X', 'N', 'O', 'T', 1, 0, 1, 0, 0, 0, 0, 0};
  P.feed(Junk);
  EXPECT_FALSE(P.next().has_value());
  EXPECT_TRUE(P.poisoned());
  EXPECT_NE(P.error().find("magic"), std::string::npos) << P.error();
  // A valid frame after the poison must NOT resynchronize the stream.
  P.feed(wire::encode(wire::ByeMsg{}));
  EXPECT_FALSE(P.next().has_value());
  EXPECT_TRUE(P.poisoned());
}

TEST(WireTest, ParserRejectsOversizedBodyLengthAtHeader) {
  wire::Writer W;
  W.u8('X');
  W.u8('N');
  W.u8('E');
  W.u8('T');
  W.u16(wire::Version);
  W.u16(static_cast<uint16_t>(wire::MsgType::Submit));
  W.u32(wire::MaxBodyBytes + 1);
  wire::FrameParser P;
  P.feed(W.bytes());
  EXPECT_FALSE(P.next().has_value());
  EXPECT_TRUE(P.poisoned());
  EXPECT_EQ(P.buffered(), 0u) << "oversized bodies must not be buffered";
}

TEST(WireTest, DribbledBytesYieldSameFrames) {
  std::vector<uint8_t> Stream = wire::encode(wire::HelloMsg{1, "dribble"});
  auto Run = wire::encode(wire::RunMsg{5});
  Stream.insert(Stream.end(), Run.begin(), Run.end());

  wire::FrameParser Whole, ByByte;
  Whole.feed(Stream);
  for (uint8_t B : Stream)
    ByByte.feed(&B, 1);
  for (int K = 0; K < 2; ++K) {
    auto A = Whole.next(), B = ByByte.next();
    ASSERT_TRUE(A.has_value());
    ASSERT_TRUE(B.has_value());
    EXPECT_EQ(A->Type, B->Type);
    EXPECT_EQ(A->Body, B->Body);
  }
  EXPECT_FALSE(Whole.next().has_value());
  EXPECT_FALSE(ByByte.next().has_value());
}

//===----------------------------------------------------------------------===//
// End-to-end over TCP and unix sockets
//===----------------------------------------------------------------------===//

TEST(NetServerTest, TcpEndToEndVecAdd) {
  NetRig R;
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "e2e");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  EXPECT_NE(C->clientId(), 0u);
  declareVecAddSurfaces(*C);
  ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(99))));
  auto Res = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->Tag, 99u);
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
  EXPECT_EQ(Res->BatchSize, 1u);
  EXPECT_GE(Res->EndNs, Res->StartNs);
  expectVecAddResult(*C);
  EXPECT_FALSE(static_cast<bool>(C->bye()));
  R.shutdown();
  EXPECT_EQ(R.Server->netStats().Malformed, 0u);
  EXPECT_EQ(R.Server->server().stats().Completed, 1u);
}

TEST(NetServerTest, UnixSocketEndToEndVecAdd) {
  std::string Path = testing::TempDir() + "/exonet_test.sock";
  ::unlink(Path.c_str());
  NetRig R({}, nullptr, 1, Path);
  auto C = NetClient::connectUnix(Path, 30.0, "unix-e2e");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);
  ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(1))));
  auto Res = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
  expectVecAddResult(*C);
}

TEST(NetServerTest, ZeroBudgetRejectedOverWire) {
  NetRig R;
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "budget");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);
  wire::SubmitMsg M = vecAddSubmit(5);
  M.DeadlineCycles = 0;
  ASSERT_FALSE(static_cast<bool>(C->submit(M)));
  auto Res = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->Tag, 5u);
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Rejected));
  EXPECT_EQ(Res->Reason, static_cast<uint8_t>(serve::RejectReason::ZeroBudget));
}

TEST(NetServerTest, UnknownSurfaceBindFailsJobNotConnection) {
  NetRig R;
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "badbind");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);
  wire::SubmitMsg Bad = vecAddSubmit(1);
  Bad.Bind.push_back("undeclared");
  ASSERT_FALSE(static_cast<bool>(C->submit(Bad)));
  auto Res = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Failed));
  EXPECT_EQ(Res->JobId, 0u) << "never reached admission";
  EXPECT_NE(Res->Error.find("undeclared"), std::string::npos) << Res->Error;
  // The connection survives: the next submit completes normally.
  ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(2))));
  auto Ok = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Ok)) << Ok.message();
  EXPECT_EQ(Ok->State, static_cast<uint8_t>(serve::JobState::Completed));
}

TEST(NetServerTest, ReshapingASurfaceIsAProtocolError) {
  NetRig R;
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "reshape");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  wire::SurfaceMsg S;
  S.Name = "A";
  S.Width = 64;
  ASSERT_FALSE(static_cast<bool>(C->surface(S)));
  S.Width = 32;
  ASSERT_FALSE(static_cast<bool>(C->surface(S)));
  // The server answers with an Error frame and closes.
  auto Res = C->readResult();
  ASSERT_FALSE(static_cast<bool>(Res));
  EXPECT_NE(Res.message().find("protocol error"), std::string::npos)
      << Res.message();
}

//===----------------------------------------------------------------------===//
// Backpressure & coalescing
//===----------------------------------------------------------------------===//

// With backpressure on, a client that bursts far past its admission
// quota sees zero quota rejections: the server parks the overflow
// submit and stops reading that socket until completed work frees
// quota. Every job completes.
TEST(NetServerTest, BackpressureAbsorbsBurstWithoutRejections) {
  NetServerConfig NC;
  NC.Serve.Queue.PerClientCap = 4;
  NetRig R(NC);
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "burst");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);
  constexpr unsigned Jobs = 32;
  for (unsigned J = 0; J < Jobs; ++J)
    ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(J))));
  for (unsigned J = 0; J < Jobs; ++J) {
    auto Res = C->readResult();
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed))
        << "job " << Res->Tag;
  }
  expectVecAddResult(*C);
  EXPECT_FALSE(static_cast<bool>(C->bye()));
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().RejectedClientQuota, 0u);
  EXPECT_EQ(R.Server->server().stats().Completed, Jobs);
  EXPECT_GT(R.Server->netStats().BackpressureStalls, 0u);
}

// Regression: a client that disconnects *while parked* under
// backpressure must release its queue slot and re-arm the other parked
// clients — not leak the slot forever. The doomed client fills the
// queue with a held job (never runs), gets its next submit parked, and
// then vanishes without a Bye; the reaper must cancel the held job so
// the live client's parked submit is admitted and completes.
TEST(NetServerTest, DisconnectWhileParkedReleasesSlotAndRearms) {
  NetServerConfig NC;
  NC.Serve.Queue.PerClientCap = 1;
  NC.Serve.Queue.Capacity = 1;
  NetRig R(NC);

  auto Live = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "live");
  ASSERT_TRUE(static_cast<bool>(Live)) << Live.message();
  declareVecAddSurfaces(*Live);
  {
    auto Doomed = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "doomed");
    ASSERT_TRUE(static_cast<bool>(Doomed)) << Doomed.message();
    declareVecAddSurfaces(*Doomed);
    // Job 1 fills the queue (and the client quota) and is held, so it
    // never runs; job 2 busts the quota and parks the connection. The
    // stats round-trip between them pins the admission order: job 1 is
    // in the queue before anyone else's submit is read.
    ASSERT_FALSE(
        static_cast<bool>(Doomed->submit(vecAddSubmit(1, 8, wire::SubmitHold))));
    ASSERT_TRUE(static_cast<bool>(Doomed->stats()));
    ASSERT_FALSE(static_cast<bool>(Doomed->submit(vecAddSubmit(2))));
    // Parking is quota-based; the live client is not parked but finds
    // the queue full — proof the held job owns the capacity slot.
    ASSERT_FALSE(static_cast<bool>(Live->submit(vecAddSubmit(3))));
    auto Rej = Live->readResult();
    ASSERT_TRUE(static_cast<bool>(Rej)) << Rej.message();
    EXPECT_EQ(Rej->State, static_cast<uint8_t>(serve::JobState::Rejected));
    // Give the loop a poll round to actually park the doomed socket, so
    // the close below exercises the disconnect-while-parked path.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    // Scope exit: abrupt close, no Bye frame.
  }
  // The reaper must drop the parked frame and cancel the held job,
  // freeing the slot; the live client's retry is then admitted.
  bool Completed = false;
  for (unsigned Try = 0; Try < 200 && !Completed; ++Try) {
    ASSERT_FALSE(static_cast<bool>(Live->submit(vecAddSubmit(100 + Try))));
    auto Res = Live->readResult();
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    if (Res->State == static_cast<uint8_t>(serve::JobState::Completed)) {
      Completed = true;
    } else {
      ASSERT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Rejected));
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(Completed) << "the dead client's slot was never released";
  expectVecAddResult(*Live);
  EXPECT_FALSE(static_cast<bool>(Live->bye()));
  R.shutdown();
  EXPECT_EQ(R.Server->server().stats().CancelledDisconnect, 1u);
  EXPECT_EQ(R.Server->server().stats().Completed, 1u);
  EXPECT_TRUE(R.Server->server().queue().empty());
  EXPECT_GT(R.Server->netStats().BackpressureStalls, 0u);
  // The doomed client was reaped during the run; the live client's Bye
  // may still be in flight at shutdown, so only the reap is guaranteed.
  EXPECT_GE(R.Server->netStats().Closed, 1u);
}

// Held single-shred jobs that tile a 64-element range via ShredOffset
// merge into multi-shred dispatches under CoalesceWindow=4; every
// member completes and the full output range is correct.
TEST(NetServerTest, CoalescingMergesHeldTiledJobs) {
  NetServerConfig NC;
  NC.CoalesceWindow = 4;
  NetRig R(NC);
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "coalesce");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);
  for (unsigned J = 0; J < 8; ++J) {
    wire::SubmitMsg M = vecAddSubmit(J, /*Shreds=*/1, wire::SubmitHold);
    M.Params = {{"i", wire::ParamKind::ShredOffset,
                 static_cast<int32_t>(J)}};
    ASSERT_FALSE(static_cast<bool>(C->submit(M)));
  }
  ASSERT_FALSE(static_cast<bool>(C->runJobs()));
  unsigned Merged = 0;
  for (unsigned J = 0; J < 8; ++J) {
    auto Res = C->readResult();
    ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
    EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed))
        << "job " << Res->Tag;
    Merged += Res->BatchSize > 1;
  }
  EXPECT_GT(Merged, 0u) << "no result carried a batch size > 1";
  expectVecAddResult(*C);
  EXPECT_FALSE(static_cast<bool>(C->bye()));
  R.shutdown();
  EXPECT_GE(R.Server->server().stats().CoalescedBatches, 1u);
  EXPECT_GE(R.Server->server().stats().CoalescedJobs, 3u);
}

//===----------------------------------------------------------------------===//
// Malformed frames over a real socket
//===----------------------------------------------------------------------===//

TEST(NetServerTest, GarbageBytesGetErrorFrameAndClose) {
  NetRig R;
  auto S = tcpConnect("127.0.0.1", R.Port);
  ASSERT_TRUE(static_cast<bool>(S)) << S.message();
  ASSERT_FALSE(static_cast<bool>(S->setTimeout(30.0)));
  std::vector<uint8_t> Garbage(64, 0x5a);
  ASSERT_FALSE(static_cast<bool>(S->sendAll(Garbage)));

  // The server answers with one Error frame, then EOF.
  wire::FrameParser P;
  std::vector<uint8_t> In;
  std::string RecvErr;
  bool SawEof = false;
  for (int K = 0; K < 100 && !SawEof; ++K) {
    long N = S->recvSome(In, 4096, RecvErr);
    if (N == 0)
      SawEof = true;
    else if (N < 0)
      break; // timeout/error: fail below via SawEof
  }
  EXPECT_TRUE(SawEof) << "server must close a poisoned connection: "
                      << RecvErr;
  P.feed(In);
  auto F = P.next();
  ASSERT_TRUE(F.has_value()) << "no Error frame before close";
  EXPECT_EQ(F->Type, wire::MsgType::Error);
  auto E = wire::decodeError(F->Body);
  ASSERT_TRUE(static_cast<bool>(E)) << E.message();
  EXPECT_FALSE(E->Reason.empty());

  // The server survives: a well-behaved client is unaffected.
  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "after");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);
  ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(0))));
  auto Res = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
  R.shutdown();
  EXPECT_GE(R.Server->netStats().Malformed, 1u);
}

TEST(NetServerTest, MidFrameDisconnectDoesNotWedgeServer) {
  NetRig R;
  {
    auto S = tcpConnect("127.0.0.1", R.Port);
    ASSERT_TRUE(static_cast<bool>(S)) << S.message();
    // A valid header promising a 100-byte Submit body, then only 10
    // bytes, then close.
    wire::Writer W;
    W.u8('X');
    W.u8('N');
    W.u8('E');
    W.u8('T');
    W.u16(wire::Version);
    W.u16(static_cast<uint16_t>(wire::MsgType::Submit));
    W.u32(100);
    for (int K = 0; K < 10; ++K)
      W.u8(0);
    ASSERT_FALSE(static_cast<bool>(S->sendAll(W.bytes())));
  } // socket closes here, mid-frame

  auto C = NetClient::connectTcp("127.0.0.1", R.Port, 30.0, "post-cut");
  ASSERT_TRUE(static_cast<bool>(C)) << C.message();
  declareVecAddSurfaces(*C);
  ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(0))));
  auto Res = C->readResult();
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  EXPECT_EQ(Res->State, static_cast<uint8_t>(serve::JobState::Completed));
}

//===----------------------------------------------------------------------===//
// Multi-client concurrency soak (the TSan lane: client threads + the
// server loop + the parallel simulator under EXOCHI_SANITIZE=thread)
//===----------------------------------------------------------------------===//

TEST(NetServerTest, ConcurrentClientsAllAnswered) {
  NetServerConfig NC;
  // Per-client quotas bind before global capacity, so overload is
  // absorbed by backpressure instead of queue-full rejections.
  NC.Serve.Queue.Capacity = 64;
  NetRig R(NC, nullptr, /*SimThreads=*/4);
  constexpr unsigned Clients = 4, Jobs = 16;
  std::atomic<unsigned> Completed{0};
  std::vector<std::thread> Threads;
  for (unsigned K = 0; K < Clients; ++K) {
    Threads.emplace_back([&, K] {
      auto C = NetClient::connectTcp("127.0.0.1", R.Port, 60.0,
                                     "soak-" + std::to_string(K));
      ASSERT_TRUE(static_cast<bool>(C)) << C.message();
      declareVecAddSurfaces(*C);
      for (unsigned J = 0; J < Jobs; ++J)
        ASSERT_FALSE(static_cast<bool>(C->submit(vecAddSubmit(J))));
      for (unsigned J = 0; J < Jobs; ++J) {
        auto Res = C->readResult();
        ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
        if (Res->State == static_cast<uint8_t>(serve::JobState::Completed))
          ++Completed;
      }
      expectVecAddResult(*C);
      EXPECT_FALSE(static_cast<bool>(C->bye()));
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Completed.load(), Clients * Jobs)
      << "every job from every client must complete";
  R.shutdown();
  EXPECT_EQ(R.Server->netStats().ResultsDropped, 0u);
}

//===----------------------------------------------------------------------===//
// Chaos soak through the socket path: liveness + determinism
//===----------------------------------------------------------------------===//

namespace {

/// Everything observable about one served-over-sockets workload. Jobs is
/// indexed by Tag so cross-connection delivery order doesn't matter.
struct NetSoakOutcome {
  std::vector<std::tuple<uint8_t, uint8_t, uint64_t, double, double>> Jobs;
  std::string DrainJson;

  bool operator==(const NetSoakOutcome &) const = default;
};

/// The serve_test chaos mix replayed through sockets: 64 mixed-priority
/// jobs from 4 connections against a 24-deep queue under `all:0.1`
/// injection, 6 of each client's held jobs run, then a graceful drain.
/// Hold/run/drain plus a stats round-trip after every frame serialize
/// the cross-connection arrival order, making the workload a pure
/// function of the seed (DESIGN.md §13). Backpressure is off: quota
/// rejections are part of the workload here.
NetSoakOutcome runNetSoak(uint64_t Seed, unsigned SimThreads) {
  fault::FaultInjector Inj =
      cantFail(fault::FaultInjector::parse("all:0.1", Seed));
  NetServerConfig NC;
  NC.Serve.Queue.Capacity = 24;
  NC.Serve.Queue.PerClientCap = 10;
  NC.Serve.Breaker.TripThreshold = 1;
  NC.Serve.Watchdog.DefaultBudgetCycles = 100000;
  NC.Backpressure = false;
  NetRig R(NC, &Inj, SimThreads);

  constexpr unsigned Conns = 4, NumJobs = 64;
  std::vector<NetClient> Cs;
  for (unsigned K = 0; K < Conns; ++K) {
    auto C = NetClient::connectTcp("127.0.0.1", R.Port, 60.0,
                                   "chaos-" + std::to_string(K));
    EXPECT_TRUE(static_cast<bool>(C)) << C.message();
    declareVecAddSurfaces(*C);
    Cs.push_back(std::move(*C));
  }

  // A stats round-trip after every frame: the reply proves the server
  // consumed the frame, so the global arrival order is exactly the
  // submission order regardless of TCP timing.
  auto Sync = [&](NetClient &C) {
    auto S = C.stats();
    EXPECT_TRUE(static_cast<bool>(S)) << S.message();
  };

  for (unsigned J = 0; J < NumJobs; ++J) {
    int64_t Cycles = -1;
    if (J % 8 == 7)
      Cycles = 0;
    else if (J % 5 == 0)
      Cycles = 40;
    wire::SubmitMsg M = vecAddSubmit(J, /*Shreds=*/8, wire::SubmitHold);
    M.Pri = static_cast<uint8_t>(J % serve::NumPriorities);
    M.DeadlineCycles = Cycles;
    NetClient &C = Cs[J % Conns];
    EXPECT_FALSE(static_cast<bool>(C.submit(M)));
    Sync(C);
  }
  for (unsigned K = 0; K < Conns; ++K) {
    EXPECT_FALSE(static_cast<bool>(Cs[K].runJobs(6)));
    Sync(Cs[K]);
  }

  NetSoakOutcome Out;
  auto D = Cs[0].drain();
  EXPECT_TRUE(static_cast<bool>(D)) << D.message();
  Out.DrainJson = *D;

  Out.Jobs.resize(NumJobs);
  for (unsigned K = 0; K < Conns; ++K) {
    for (unsigned N = 0; N < NumJobs / Conns; ++N) {
      auto Res = Cs[K].readResult();
      EXPECT_TRUE(static_cast<bool>(Res)) << Res.message();
      if (!Res)
        return Out;
      EXPECT_LT(Res->Tag, NumJobs);
      Out.Jobs[Res->Tag] = {Res->State, Res->Reason, Res->ShredsPreempted,
                            Res->StartNs, Res->EndNs};
    }
    EXPECT_FALSE(static_cast<bool>(Cs[K].bye()));
  }
  return Out;
}

} // namespace

TEST(NetSoakTest, ChaosSoakTerminalAndBitIdenticalAcrossSimThreads) {
  for (uint64_t Seed : {1u, 2u, 3u, 5u, 7u, 11u, 13u, 42u}) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    NetSoakOutcome Serial = runNetSoak(Seed, /*SimThreads=*/1);

    // Liveness: all 64 jobs answered with a terminal state over the
    // wire; injected faults degrade, never fail.
    ASSERT_EQ(Serial.Jobs.size(), 64u);
    unsigned ZeroBudget = 0;
    for (size_t K = 0; K < Serial.Jobs.size(); ++K) {
      uint8_t St = std::get<0>(Serial.Jobs[K]);
      EXPECT_NE(St, static_cast<uint8_t>(serve::JobState::Queued))
          << "job " << K;
      EXPECT_NE(St, static_cast<uint8_t>(serve::JobState::Running))
          << "job " << K;
      EXPECT_NE(St, static_cast<uint8_t>(serve::JobState::Failed))
          << "job " << K;
      ZeroBudget +=
          St == static_cast<uint8_t>(serve::JobState::Rejected) &&
          std::get<1>(Serial.Jobs[K]) ==
              static_cast<uint8_t>(serve::RejectReason::ZeroBudget);
    }
    EXPECT_EQ(ZeroBudget, 8u);

    NetSoakOutcome Parallel = runNetSoak(Seed, /*SimThreads=*/4);
    EXPECT_TRUE(Parallel == Serial)
        << "socket-served workload diverges at SimThreads=4";
  }
}
