//===- tests/fatbin_test.cpp - Unit tests for the fat binary -----------------===//

#include "fatbin/FatBinary.h"

#include "isa/Encoding.h"
#include "support/Random.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::fatbin;

namespace {

CodeSection makeSection(const char *Name) {
  CodeSection S;
  S.Isa = IsaTag::XGMA;
  S.Name = Name;
  S.Code = {1, 2, 3, 4};
  S.ScalarParams = {"i", "n"};
  S.SurfaceParams = {"src", "dst"};
  S.Debug.Lines = {1, 2, 5};
  S.Debug.SourceText = "  nop\n  halt\n";
  S.Debug.Labels["loop"] = 1;
  return S;
}

} // namespace

TEST(FatBinaryTest, AssignsUniqueIds) {
  FatBinary FB;
  uint32_t A = FB.addSection(makeSection("a"));
  uint32_t B = FB.addSection(makeSection("b"));
  EXPECT_NE(A, B);
  EXPECT_EQ(FB.findById(A)->Name, "a");
  EXPECT_EQ(FB.findById(B)->Name, "b");
  EXPECT_EQ(FB.findById(999), nullptr);
}

TEST(FatBinaryTest, FindByName) {
  FatBinary FB;
  FB.addSection(makeSection("vecadd"));
  ASSERT_NE(FB.findByName("vecadd"), nullptr);
  EXPECT_EQ(FB.findByName("nope"), nullptr);
}

TEST(FatBinaryTest, SerializeDeserializeRoundTrip) {
  FatBinary FB;
  FB.addSection(makeSection("k1"));
  CodeSection S2 = makeSection("k2");
  S2.Isa = IsaTag::IA32;
  S2.Code.clear();
  FB.addSection(std::move(S2));

  auto Bytes = FB.serialize();
  auto Back = FatBinary::deserialize(Bytes);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  ASSERT_EQ(Back->sections().size(), 2u);

  const CodeSection *K1 = Back->findByName("k1");
  ASSERT_NE(K1, nullptr);
  EXPECT_EQ(K1->Isa, IsaTag::XGMA);
  EXPECT_EQ(K1->Code, (std::vector<uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(K1->ScalarParams, (std::vector<std::string>{"i", "n"}));
  EXPECT_EQ(K1->SurfaceParams, (std::vector<std::string>{"src", "dst"}));
  EXPECT_EQ(K1->Debug.Lines, (std::vector<uint32_t>{1, 2, 5}));
  EXPECT_EQ(K1->Debug.SourceText, "  nop\n  halt\n");
  EXPECT_EQ(K1->Debug.Labels.at("loop"), 1u);

  const CodeSection *K2 = Back->findByName("k2");
  ASSERT_NE(K2, nullptr);
  EXPECT_EQ(K2->Isa, IsaTag::IA32);
  EXPECT_TRUE(K2->Code.empty());
}

TEST(FatBinaryTest, IdsSurviveRoundTripAndKeepGrowing) {
  FatBinary FB;
  uint32_t A = FB.addSection(makeSection("a"));
  auto Back = cantFail(FatBinary::deserialize(FB.serialize()));
  uint32_t B = Back.addSection(makeSection("b"));
  EXPECT_NE(A, B);
}

TEST(FatBinaryTest, RejectsBadMagic) {
  std::vector<uint8_t> Bytes = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  auto Back = FatBinary::deserialize(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  EXPECT_NE(Back.message().find("magic"), std::string::npos);
}

TEST(FatBinaryTest, RejectsTruncation) {
  FatBinary FB;
  FB.addSection(makeSection("k"));
  auto Bytes = FB.serialize();
  for (size_t Cut : {Bytes.size() - 1, Bytes.size() / 2, size_t(9)}) {
    std::vector<uint8_t> T(Bytes.begin(),
                           Bytes.begin() + static_cast<ptrdiff_t>(Cut));
    auto Back = FatBinary::deserialize(T);
    EXPECT_FALSE(static_cast<bool>(Back)) << "cut=" << Cut;
  }
}

TEST(FatBinaryTest, RejectsTrailingGarbage) {
  FatBinary FB;
  FB.addSection(makeSection("k"));
  auto Bytes = FB.serialize();
  Bytes.push_back(0xcc);
  auto Back = FatBinary::deserialize(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  EXPECT_NE(Back.message().find("trailing"), std::string::npos);
}

// The container format has no padding and ends with a trailing-bytes
// check, so EVERY strict prefix of a valid serialization must be
// rejected — never accepted, never crash.
TEST(FatBinaryTest, RejectsEveryPrefixTruncation) {
  FatBinary FB;
  FB.addSection(makeSection("k1"));
  FB.addSection(makeSection("k2"));
  auto Bytes = FB.serialize();
  for (size_t Cut = 0; Cut < Bytes.size(); ++Cut) {
    std::vector<uint8_t> T(Bytes.begin(),
                           Bytes.begin() + static_cast<ptrdiff_t>(Cut));
    auto Back = FatBinary::deserialize(T);
    ASSERT_FALSE(static_cast<bool>(Back)) << "prefix of " << Cut
                                          << " bytes parsed";
    EXPECT_FALSE(Back.message().empty()) << "cut=" << Cut;
  }
}

// A length prefix pointing past the end of the buffer (the classic
// reader bug) must come back as a clean truncation error, not a read
// past the buffer or a multi-gigabyte allocation.
TEST(FatBinaryTest, RejectsBadLengthFields) {
  FatBinary FB;
  FB.addSection(makeSection("k"));
  auto Bytes = FB.serialize();

  // Layout: magic(4) version(4) count(4) | id(4) isa(1) nameLen(4) ...
  constexpr size_t NameLenOff = 4 + 4 + 4 + 4 + 1;
  auto Corrupt = [&](size_t Off, uint32_t V) {
    std::vector<uint8_t> C = Bytes;
    C[Off + 0] = static_cast<uint8_t>(V);
    C[Off + 1] = static_cast<uint8_t>(V >> 8);
    C[Off + 2] = static_cast<uint8_t>(V >> 16);
    C[Off + 3] = static_cast<uint8_t>(V >> 24);
    return FatBinary::deserialize(C);
  };

  auto BadName = Corrupt(NameLenOff, 0xffffffffu);
  EXPECT_FALSE(static_cast<bool>(BadName));
  EXPECT_NE(BadName.message().find("truncated"), std::string::npos)
      << BadName.message();

  // Section count far beyond the data: the reader must fail at the
  // first missing section rather than looping forever.
  auto BadCount = Corrupt(8, 0x10000000u);
  EXPECT_FALSE(static_cast<bool>(BadCount));
  EXPECT_NE(BadCount.message().find("truncated"), std::string::npos)
      << BadCount.message();

  auto BadVersion = Corrupt(4, 0xdeadbeefu);
  EXPECT_FALSE(static_cast<bool>(BadVersion));
  EXPECT_NE(BadVersion.message().find("version"), std::string::npos)
      << BadVersion.message();
}

TEST(FatBinaryTest, RejectsBadIsaTag) {
  FatBinary FB;
  FB.addSection(makeSection("k"));
  auto Bytes = FB.serialize();
  Bytes[4 + 4 + 4 + 4] = 0x7f; // isa byte of section 0
  auto Back = FatBinary::deserialize(Bytes);
  EXPECT_FALSE(static_cast<bool>(Back));
  EXPECT_NE(Back.message().find("ISA"), std::string::npos) << Back.message();
}

// Fuzz the reader: random byte flips over a valid image, and raw random
// buffers. Every outcome must be a clean parse or a clean Error —
// deterministic seed so a failure reproduces.
TEST(FatBinaryTest, FuzzedImagesNeverCrash) {
  FatBinary FB;
  FB.addSection(makeSection("alpha"));
  FB.addSection(makeSection("beta"));
  auto Valid = FB.serialize();

  Rng R(0xfa7b175ULL);
  for (int Iter = 0; Iter < 2000; ++Iter) {
    std::vector<uint8_t> T = Valid;
    unsigned Flips = 1 + static_cast<unsigned>(R.nextBelow(8));
    for (unsigned F = 0; F < Flips; ++F)
      T[R.nextBelow(T.size())] ^= static_cast<uint8_t>(1 + R.nextBelow(255));
    auto Back = FatBinary::deserialize(T);
    if (!Back)
      EXPECT_FALSE(Back.message().empty());
  }

  for (int Iter = 0; Iter < 500; ++Iter) {
    std::vector<uint8_t> T(R.nextBelow(96));
    for (uint8_t &B : T)
      B = static_cast<uint8_t>(R.next());
    auto Back = FatBinary::deserialize(T);
    if (!Back)
      EXPECT_FALSE(Back.message().empty());
  }
}

TEST(FatBinaryTest, AssembledKernelRoundTripsThroughContainer) {
  // Integration: assemble -> encode -> pack -> serialize -> load -> decode.
  xasm::SymbolBindings Binds;
  Binds.bindScalar("i", 0);
  Binds.bindSurface("A", 0);
  auto K = xasm::assembleKernel("  ld.8.dw [vr2..vr9] = (A, i, 0)\n"
                                "  add.8.dw [vr2..vr9] = [vr2..vr9], 1\n"
                                "  st.8.dw (A, i, 0) = [vr2..vr9]\n"
                                "  halt\n",
                                Binds);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();

  FatBinary FB;
  CodeSection S;
  S.Name = "inc";
  S.Code = isa::encodeProgram(K->Code);
  S.Debug.Lines = K->Lines;
  uint32_t Id = FB.addSection(std::move(S));

  auto Back = cantFail(FatBinary::deserialize(FB.serialize()));
  const CodeSection *Found = Back.findById(Id);
  ASSERT_NE(Found, nullptr);
  auto Prog = isa::decodeProgram(Found->Code);
  ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.message();
  ASSERT_EQ(Prog->size(), 4u);
  EXPECT_TRUE((*Prog)[0] == K->Code[0]);
  EXPECT_TRUE((*Prog)[3] == K->Code[3]);
}
