//===- tests/tools_test.cpp - Command-line tool integration tests -------------===//
//
// Drives the installed CLI tools end to end through a shell: assemble an
// .xasm file, inspect the fat binary, run it on the platform, and debug
// it from a script. TOOLS_DIR is injected by CMake.
//
//===----------------------------------------------------------------------===//

#include "support/File.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace exochi;

namespace {

std::string toolsDir() { return TOOLS_DIR; }

/// Runs a command, captures stdout+stderr, returns (exit code, output).
std::pair<int, std::string> runCmd(const std::string &Cmd) {
  std::string Full = Cmd + " 2>&1";
  std::FILE *P = popen(Full.c_str(), "r");
  EXPECT_NE(P, nullptr);
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Rc = pclose(P);
  return {WEXITSTATUS(Rc), Out};
}

struct ToolPipelineTest : public ::testing::Test {
  void SetUp() override {
    Dir = ::testing::TempDir();
    // Per-test file names: the fixture's tests run concurrently under
    // `ctest -j` and must not share scratch files.
    std::string Tag =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    AsmPath = Dir + "/tp_vecadd_" + Tag + ".xasm";
    BinPath = Dir + "/tp_vecadd_" + Tag + ".xfb";
    std::string Src = "  mul.1.dw vr1 = i, 8\n"
                      "  ld.8.dw [vr2..vr9] = (A, vr1, 0)\n"
                      "  add.8.dw [vr2..vr9] = [vr2..vr9], [vr2..vr9]\n"
                      "  st.8.dw (A, vr1, 0) = [vr2..vr9]\n"
                      "  halt\n";
    cantFail(writeFileBytes(
        AsmPath, std::vector<uint8_t>(Src.begin(), Src.end())));
  }
  void TearDown() override {
    std::remove(AsmPath.c_str());
    std::remove(BinPath.c_str());
  }

  std::string Dir, AsmPath, BinPath;
};

} // namespace

TEST_F(ToolPipelineTest, AssembleInspectRunDebug) {
  // 1) Assemble with the optimizer and strict lint.
  auto [RcAs, OutAs] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                              BinPath +
                              " --name double --scalars i --surfaces A -O "
                              "--strict");
  ASSERT_EQ(RcAs, 0) << OutAs;
  EXPECT_NE(OutAs.find("strength-reduced"), std::string::npos) << OutAs;

  // 2) Inspect: section listing, re-assemblable disassembly, clean lint.
  auto [RcDump, OutDump] =
      runCmd(toolsDir() + "/xgma-objdump " + BinPath + " --disasm --lint");
  ASSERT_EQ(RcDump, 0) << OutDump;
  EXPECT_NE(OutDump.find("double"), std::string::npos);
  EXPECT_NE(OutDump.find("shl.1.dw vr1 = vr0, 3"), std::string::npos)
      << OutDump; // the optimizer's strength reduction is visible
  EXPECT_NE(OutDump.find("lint: clean"), std::string::npos);

  // 3) Run 4 shreds over a seq-filled surface: elements double.
  auto [RcRun, OutRun] = runCmd(
      toolsDir() + "/exochi-run " + BinPath +
      " --kernel double --shreds 4 --surface A=32x1:seq --param i=shred");
  ASSERT_EQ(RcRun, 0) << OutRun;
  EXPECT_NE(OutRun.find("A[0..7] = 0 2 4 6 8 10 12 14"), std::string::npos)
      << OutRun;

  // 4) Scripted debug session: break, inspect, continue.
  std::string Script = BinPath + ".script.txt";
  std::string Cmds = "bl 2\nrun\np vr1\nc\nq\n";
  cantFail(writeFileBytes(Script,
                          std::vector<uint8_t>(Cmds.begin(), Cmds.end())));
  auto [RcDbg, OutDbg] =
      runCmd(toolsDir() + "/xgma-dbg " + BinPath +
             " --kernel double --shreds 1 --param i=3 --surface A=32x1 "
             "--batch " +
             Script);
  std::remove(Script.c_str());
  ASSERT_EQ(RcDbg, 0) << OutDbg;
  EXPECT_NE(OutDbg.find("stopped: shred 1"), std::string::npos) << OutDbg;
  EXPECT_NE(OutDbg.find("vr1 = 24"), std::string::npos) << OutDbg; // 3<<3
  EXPECT_NE(OutDbg.find("drained"), std::string::npos) << OutDbg;
}

TEST_F(ToolPipelineTest, StrictLintRejectsBuggyKernel) {
  std::string Bad = "  add.1.dw vr8 = vr9, 1\n  halt\n";
  cantFail(
      writeFileBytes(AsmPath, std::vector<uint8_t>(Bad.begin(), Bad.end())));
  auto [Rc, Out] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                          BinPath + " --name buggy --strict");
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("uninitialized"), std::string::npos) << Out;
}

TEST_F(ToolPipelineTest, AppendBuildsMultiKernelBinaries) {
  auto [Rc1, Out1] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                            BinPath + " --name k1 --scalars i --surfaces A");
  ASSERT_EQ(Rc1, 0) << Out1;
  auto [Rc2, Out2] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                            BinPath + " --name k2 --scalars i --surfaces A "
                            "--append " +
                            BinPath);
  ASSERT_EQ(Rc2, 0) << Out2;
  EXPECT_NE(Out2.find("2 sections"), std::string::npos) << Out2;

  // Duplicate names are rejected.
  auto [Rc3, Out3] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                            BinPath + " --name k1 --scalars i --surfaces A "
                            "--append " +
                            BinPath);
  EXPECT_NE(Rc3, 0);
  EXPECT_NE(Out3.find("already exists"), std::string::npos) << Out3;
}

TEST_F(ToolPipelineTest, LintToolVerifiesFatBinariesAndRegistry) {
  // A racy kernel: every shred stores element 0.
  std::string Racy = "  mov.1.dw vr8 = 0\n"
                     "  st.1.dw (A, vr8, 0) = vr0\n"
                     "  halt\n";
  cantFail(writeFileBytes(
      AsmPath, std::vector<uint8_t>(Racy.begin(), Racy.end())));
  auto [RcAs, OutAs] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                              BinPath + " --name racy --scalars i "
                              "--surfaces A");
  ASSERT_EQ(RcAs, 0) << OutAs;

  auto [RcLint, OutLint] = runCmd(toolsDir() + "/exochi-lint " + BinPath);
  EXPECT_EQ(RcLint, 1) << OutLint; // warnings gate the exit status
  EXPECT_NE(OutLint.find("race"), std::string::npos) << OutLint;
  EXPECT_NE(OutLint.find("racy:1:"), std::string::npos) << OutLint;

  // The production kernel library is warning-free (the CI gate).
  auto [RcReg, OutReg] = runCmd(toolsDir() + "/exochi-lint --registry");
  EXPECT_EQ(RcReg, 0) << OutReg;
  EXPECT_NE(OutReg.find("0 error(s), 0 warning(s)"), std::string::npos)
      << OutReg;

  // No inputs at all is a usage error.
  EXPECT_EQ(runCmd(toolsDir() + "/exochi-lint").first, 2);
}

TEST_F(ToolPipelineTest, RunnerLintModesGateDispatch) {
  std::string Racy = "  mov.1.dw vr8 = 0\n"
                     "  st.1.dw (A, vr8, 0) = vr0\n"
                     "  halt\n";
  cantFail(writeFileBytes(
      AsmPath, std::vector<uint8_t>(Racy.begin(), Racy.end())));
  auto [RcAs, OutAs] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                              BinPath + " --name racy --scalars i "
                              "--surfaces A");
  ASSERT_EQ(RcAs, 0) << OutAs;

  std::string Common = " --kernel racy --shreds 2 --surface A=32x1 "
                       "--param i=shred";

  // collect (the default): diagnoses but still runs.
  auto [RcC, OutC] =
      runCmd(toolsDir() + "/exochi-run " + BinPath + Common);
  EXPECT_EQ(RcC, 0) << OutC;
  EXPECT_NE(OutC.find("race"), std::string::npos) << OutC;
  EXPECT_NE(OutC.find("ran 'racy'"), std::string::npos) << OutC;

  // reject: refuses to dispatch.
  auto [RcR, OutR] = runCmd(toolsDir() + "/exochi-run " + BinPath + Common +
                            " --lint=reject");
  EXPECT_EQ(RcR, 1) << OutR;
  EXPECT_NE(OutR.find("rejected by --lint=reject"), std::string::npos)
      << OutR;
  EXPECT_EQ(OutR.find("ran 'racy'"), std::string::npos) << OutR;

  // ignore: silent.
  auto [RcI, OutI] = runCmd(toolsDir() + "/exochi-run " + BinPath + Common +
                            " --lint=ignore");
  EXPECT_EQ(RcI, 0) << OutI;
  EXPECT_EQ(OutI.find("race"), std::string::npos) << OutI;

  // Bad mode is a usage error.
  EXPECT_EQ(runCmd(toolsDir() + "/exochi-run " + BinPath + Common +
                   " --lint=sometimes")
                .first,
            2);
}

TEST_F(ToolPipelineTest, ObjdumpLintShowsVerifierFindings) {
  std::string Oob = "  mov.1.dw vr8 = -3\n"
                    "  ld.1.dw vr9 = (A, vr8, 0)\n"
                    "  halt\n";
  cantFail(
      writeFileBytes(AsmPath, std::vector<uint8_t>(Oob.begin(), Oob.end())));
  auto [RcAs, OutAs] = runCmd(toolsDir() + "/xgma-as " + AsmPath + " -o " +
                              BinPath + " --name oob --surfaces A");
  ASSERT_EQ(RcAs, 0) << OutAs;
  auto [RcDump, OutDump] =
      runCmd(toolsDir() + "/xgma-objdump " + BinPath + " --lint");
  ASSERT_EQ(RcDump, 0) << OutDump;
  EXPECT_NE(OutDump.find("error"), std::string::npos) << OutDump;
  EXPECT_NE(OutDump.find("provably negative"), std::string::npos) << OutDump;
}

TEST_F(ToolPipelineTest, UsageErrorsExitNonZero) {
  EXPECT_NE(runCmd(toolsDir() + "/xgma-as").first, 0);
  EXPECT_NE(runCmd(toolsDir() + "/xgma-objdump /nonexistent.xfb").first, 0);
  EXPECT_NE(runCmd(toolsDir() + "/exochi-run /nonexistent.xfb --kernel x")
                .first,
            0);
  EXPECT_EQ(runCmd(toolsDir() + "/xgma-as --help").first, 0);
}
