//===- tests/gma_ops_test.cpp - Systematic ISA operation semantics ------------===//
//
// For every ALU opcode and element type, runs a 4-wide instruction on the
// device over random register inputs and checks the result against an
// independent host-side reference of the documented semantics (64-bit
// intermediates, sign-extension to the element type, logical vs arithmetic
// shifts, saturating conversions, IEEE f32).
//
//===----------------------------------------------------------------------===//

#include "exo/ExoPlatform.h"
#include "support/Format.h"
#include "support/Random.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

using namespace exochi;
using namespace exochi::isa;

namespace {

/// Runs `OP.4.TY [vr8..vr11] = [vr0..vr3], [vr4..vr7]` (or unary) with the
/// given 8 input register values and returns vr8..vr11 after execution.
std::vector<uint32_t> runOp(const std::string &Mnemonic, bool Unary,
                            const std::vector<uint32_t> &Inputs) {
  exo::ExoPlatform P;
  exo::SharedBuffer Out = P.allocateShared(64, "out");

  std::string Src;
  if (Unary)
    Src = formatString("  %s [vr8..vr11] = [vr0..vr3]\n", Mnemonic.c_str());
  else
    Src = formatString("  %s [vr8..vr11] = [vr0..vr3], [vr4..vr7]\n",
                       Mnemonic.c_str());
  Src += "  mov.1.dw vr30 = 0\n"
         "  st.4.dw (out, vr30, 0) = [vr8..vr11]\n"
         "  halt\n";
  xasm::SymbolBindings Binds;
  Binds.bindSurface("out", 0);
  auto K = xasm::assembleKernel(Src, Binds);
  EXPECT_TRUE(static_cast<bool>(K)) << K.message() << Src;

  gma::KernelImage Img;
  Img.Code = K->Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));

  auto Table = std::make_shared<gma::SurfaceTable>();
  gma::SurfaceBinding S;
  S.Base = Out.Base;
  S.Width = 16;
  Table->push_back(S);

  gma::ShredDescriptor D;
  D.KernelId = Kid;
  for (uint32_t V : Inputs)
    D.Params.push_back(static_cast<int32_t>(V));
  D.Surfaces = Table;
  P.device().enqueueShred(std::move(D));
  auto Exit = P.device().run(0.0);
  EXPECT_TRUE(static_cast<bool>(Exit)) << Exit.message();

  std::vector<uint32_t> R(4);
  P.read(Out.Base, R.data(), 16);
  return R;
}

int64_t signExtendTo(int64_t V, ElemType Ty) {
  switch (Ty) {
  case ElemType::I8:
    return static_cast<int8_t>(V);
  case ElemType::I16:
    return static_cast<int16_t>(V);
  default:
    return static_cast<int32_t>(V);
  }
}

struct OpCase {
  const char *Base;
  bool Unary;
  /// Integer reference (64-bit intermediates, then sign-extend).
  int64_t (*IntRef)(int64_t, int64_t);
  /// Float reference (nullptr when the op is integer-only).
  float (*F32Ref)(float, float);
};

const OpCase Cases[] = {
    {"add", false, [](int64_t A, int64_t B) { return A + B; },
     [](float A, float B) { return A + B; }},
    {"sub", false, [](int64_t A, int64_t B) { return A - B; },
     [](float A, float B) { return A - B; }},
    {"mul", false, [](int64_t A, int64_t B) { return A * B; },
     [](float A, float B) { return A * B; }},
    {"min", false,
     [](int64_t A, int64_t B) { return std::min(A, B); },
     [](float A, float B) { return std::min(A, B); }},
    {"max", false,
     [](int64_t A, int64_t B) { return std::max(A, B); },
     [](float A, float B) { return std::max(A, B); }},
    {"avg", false,
     [](int64_t A, int64_t B) { return (A + B + 1) >> 1; },
     [](float A, float B) { return (A + B) * 0.5f; }},
    {"abs", true, [](int64_t A, int64_t) { return A < 0 ? -A : A; },
     [](float A, float) { return std::fabs(A); }},
    {"and", false, [](int64_t A, int64_t B) { return A & B; }, nullptr},
    {"or", false, [](int64_t A, int64_t B) { return A | B; }, nullptr},
    {"xor", false, [](int64_t A, int64_t B) { return A ^ B; }, nullptr},
    {"not", true, [](int64_t A, int64_t) { return ~A; }, nullptr},
    {"shl", false, [](int64_t A, int64_t B) { return A << (B & 31); },
     nullptr},
    {"shr", false,
     [](int64_t A, int64_t B) {
       return static_cast<int64_t>(static_cast<uint32_t>(A) >> (B & 31));
     },
     nullptr},
    {"asr", false,
     [](int64_t A, int64_t B) {
       return static_cast<int64_t>(static_cast<int32_t>(A) >> (B & 31));
     },
     nullptr},
    {"mov", true, [](int64_t A, int64_t) { return A; },
     [](float A, float) { return A; }},
};

struct TypedCase {
  unsigned OpIdx;
  ElemType Ty;
};

std::vector<TypedCase> allTypedCases() {
  std::vector<TypedCase> Out;
  const ElemType IntTys[] = {ElemType::I8, ElemType::I16, ElemType::I32};
  for (unsigned K = 0; K < std::size(Cases); ++K) {
    for (ElemType Ty : IntTys)
      Out.push_back({K, Ty});
    if (Cases[K].F32Ref)
      Out.push_back({K, ElemType::F32});
  }
  return Out;
}

std::string typedCaseName(const ::testing::TestParamInfo<TypedCase> &Info) {
  return formatString("%s_%s", Cases[Info.param.OpIdx].Base,
                      Info.param.Ty == ElemType::F32
                          ? "f"
                          : elemTypeName(Info.param.Ty));
}

} // namespace

class OpSemanticsTest : public ::testing::TestWithParam<TypedCase> {};

TEST_P(OpSemanticsTest, MatchesReference) {
  const OpCase &C = Cases[GetParam().OpIdx];
  ElemType Ty = GetParam().Ty;
  std::string Mnemonic =
      formatString("%s.4.%s", C.Base, elemTypeName(Ty));

  Rng R(0xd00d + GetParam().OpIdx * 131 + static_cast<unsigned>(Ty));
  for (unsigned Trial = 0; Trial < 8; ++Trial) {
    std::vector<uint32_t> In(8);
    for (auto &V : In) {
      if (Ty == ElemType::F32) {
        float F = static_cast<float>(R.nextInRange(-1000, 1000)) * 0.25f;
        std::memcpy(&V, &F, 4);
      } else {
        // Values pre-sign-extended to the element type, as the ABI and
        // prior typed instructions would leave them.
        V = static_cast<uint32_t>(
            signExtendTo(static_cast<int64_t>(R.next()), Ty));
      }
    }

    auto Got = runOp(Mnemonic, C.Unary, In);
    for (unsigned L = 0; L < 4; ++L) {
      if (Ty == ElemType::F32) {
        float A, B, G;
        std::memcpy(&A, &In[L], 4);
        std::memcpy(&B, &In[4 + L], 4);
        std::memcpy(&G, &Got[L], 4);
        float Want = C.F32Ref(A, B);
        EXPECT_EQ(std::memcmp(&G, &Want, 4), 0)
            << Mnemonic << " lane " << L << ": got " << G << " want "
            << Want;
      } else {
        int64_t A = static_cast<int32_t>(In[L]);
        int64_t B = static_cast<int32_t>(In[4 + L]);
        uint32_t Want = static_cast<uint32_t>(
            signExtendTo(C.IntRef(A, B), Ty));
        EXPECT_EQ(Got[L], Want)
            << Mnemonic << " lane " << L << " A=" << A << " B=" << B;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpSemanticsTest,
                         ::testing::ValuesIn(allTypedCases()),
                         typedCaseName);

//===----------------------------------------------------------------------===//
// Mac, Div, Cvt, Cmp and broadcast specifics
//===----------------------------------------------------------------------===//

TEST(OpSpecificsTest, MacAccumulates) {
  // vr8..vr11 start as params too: dst = dst + s0*s1.
  std::vector<uint32_t> In = {3, 4, 5, 6, 10, 20, 30, 40};
  auto Got = runOp("mac.4.dw", false, In);
  // Inputs map vr0..vr7; dst vr8..vr11 initialized to 0 (params only fill
  // vr0..vr7), so mac == mul here.
  EXPECT_EQ(Got[0], 30u);
  EXPECT_EQ(Got[3], 240u);
}

TEST(OpSpecificsTest, DivTruncatesTowardZero) {
  std::vector<uint32_t> In = {static_cast<uint32_t>(-7), 7,
                              static_cast<uint32_t>(-9), 100,
                              2, 2, 4, 7};
  auto Got = runOp("div.4.dw", false, In);
  EXPECT_EQ(static_cast<int32_t>(Got[0]), -3); // C++ trunc semantics
  EXPECT_EQ(static_cast<int32_t>(Got[1]), 3);
  EXPECT_EQ(static_cast<int32_t>(Got[2]), -2);
  EXPECT_EQ(static_cast<int32_t>(Got[3]), 14);
}

TEST(OpSpecificsTest, CvtSaturatesNarrowInteger) {
  exo::ExoPlatform P;
  exo::SharedBuffer Out = P.allocateShared(64, "out");
  xasm::SymbolBindings Binds;
  Binds.bindSurface("out", 0);
  auto K = cantFail(xasm::assembleKernel(
      "  cvt.4.b.dw [vr8..vr11] = [vr0..vr3]\n"
      "  mov.1.dw vr30 = 0\n"
      "  st.4.dw (out, vr30, 0) = [vr8..vr11]\n"
      "  halt\n",
      Binds));
  gma::KernelImage Img;
  Img.Code = K.Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));
  auto Table = std::make_shared<gma::SurfaceTable>();
  gma::SurfaceBinding S;
  S.Base = Out.Base;
  S.Width = 16;
  Table->push_back(S);
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Params = {300, -300, 17, -128};
  D.Surfaces = Table;
  P.device().enqueueShred(std::move(D));
  ASSERT_TRUE(static_cast<bool>(P.device().run(0.0)));
  EXPECT_EQ(P.load<int32_t>(Out.Base + 0), 127);   // saturated up
  EXPECT_EQ(P.load<int32_t>(Out.Base + 4), -128);  // saturated down
  EXPECT_EQ(P.load<int32_t>(Out.Base + 8), 17);    // in range
  EXPECT_EQ(P.load<int32_t>(Out.Base + 12), -128); // boundary
}

TEST(OpSpecificsTest, CvtFloatIntRoundTrip) {
  std::vector<uint32_t> In(8, 0);
  float F = -2.75f;
  std::memcpy(&In[0], &F, 4);
  // cvt.4.dw.f truncates toward zero.
  auto Got = runOp("cvt.4.dw.f", true, In);
  EXPECT_EQ(static_cast<int32_t>(Got[0]), -2);
}

TEST(OpSpecificsTest, ScalarBroadcastAppliesToAllLanes) {
  exo::ExoPlatform P;
  exo::SharedBuffer Out = P.allocateShared(64, "out");
  xasm::SymbolBindings Binds;
  Binds.bindSurface("out", 0);
  Binds.bindScalar("k", 4);
  auto K = cantFail(xasm::assembleKernel(
      "  add.4.dw [vr8..vr11] = [vr0..vr3], k\n"
      "  mov.1.dw vr30 = 0\n"
      "  st.4.dw (out, vr30, 0) = [vr8..vr11]\n"
      "  halt\n",
      Binds));
  gma::KernelImage Img;
  Img.Code = K.Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));
  auto Table = std::make_shared<gma::SurfaceTable>();
  gma::SurfaceBinding S;
  S.Base = Out.Base;
  S.Width = 16;
  Table->push_back(S);
  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Params = {10, 20, 30, 40, 7}; // vr4 = k = 7
  D.Surfaces = Table;
  P.device().enqueueShred(std::move(D));
  ASSERT_TRUE(static_cast<bool>(P.device().run(0.0)));
  EXPECT_EQ(P.load<int32_t>(Out.Base + 0), 17);
  EXPECT_EQ(P.load<int32_t>(Out.Base + 12), 47);
}

TEST(OpSpecificsTest, CmpConditionsPerLane) {
  for (auto [Cond, Expect] :
       std::vector<std::pair<const char *, std::array<int, 4>>>{
           {"eq", {0, 1, 0, 0}},
           {"ne", {1, 0, 1, 1}},
           {"lt", {1, 0, 0, 0}},
           {"le", {1, 1, 0, 0}},
           {"gt", {0, 0, 1, 1}},
           {"ge", {0, 1, 1, 1}}}) {
    exo::ExoPlatform P;
    exo::SharedBuffer Out = P.allocateShared(64, "out");
    xasm::SymbolBindings Binds;
    Binds.bindSurface("out", 0);
    std::string Src =
        formatString("  cmp.%s.4.dw p1 = [vr0..vr3], [vr4..vr7]\n", Cond);
    Src += "  mov.4.dw [vr8..vr11] = 0\n"
           "  sel.4.dw p1, [vr8..vr11] = 1, 0\n"
           "  mov.1.dw vr30 = 0\n"
           "  st.4.dw (out, vr30, 0) = [vr8..vr11]\n"
           "  halt\n";
    auto K = cantFail(xasm::assembleKernel(Src, Binds));
    gma::KernelImage Img;
    Img.Code = K.Code;
    uint32_t Kid = P.device().registerKernel(std::move(Img));
    auto Table = std::make_shared<gma::SurfaceTable>();
    gma::SurfaceBinding S;
    S.Base = Out.Base;
    S.Width = 16;
    Table->push_back(S);
    gma::ShredDescriptor D;
    D.KernelId = Kid;
    D.Params = {1, 5, 9, 100, 2, 5, 3, 50}; // lanes: <, ==, >, >
    D.Surfaces = Table;
    P.device().enqueueShred(std::move(D));
    ASSERT_TRUE(static_cast<bool>(P.device().run(0.0)));
    for (unsigned L = 0; L < 4; ++L)
      EXPECT_EQ(P.load<int32_t>(Out.Base + L * 4), Expect[L])
          << Cond << " lane " << L;
  }
}

TEST(OpSpecificsTest, NarrowTypesWrapInStores) {
  // I16 add wraps mod 2^16 and stores sign-extended registers whose low
  // bytes hit memory.
  std::vector<uint32_t> In = {0x7fff, 0xffff8000u, 0, 0,
                              1, static_cast<uint32_t>(-1), 0, 0};
  auto Got = runOp("add.4.w", false, In);
  EXPECT_EQ(static_cast<int32_t>(Got[0]), -32768); // 0x7fff+1 wraps
  EXPECT_EQ(static_cast<int32_t>(Got[1]), 0x7fff); // -32768-1 wraps
}
