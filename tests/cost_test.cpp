//===- tests/cost_test.cpp - XCost static cycle-bound analyzer tests ----------===//
//
// The envelope contract (DESIGN.md §15): for any dispatch, the measured
// functional IssueCycles counter — identical on both backends — must fall
// inside NumShreds * [minCycles, maxCycles] of the static report, and the
// ten Table 2 production kernels must always get finite bounds under their
// real dispatch envelopes. Loop-structure tests double as Cfg coverage
// for self-loop, nested, and irreducible graphs.
//
//===----------------------------------------------------------------------===//

#include "xopt/Cost.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"
#include "isa/Encoding.h"
#include "kernels/Workloads.h"
#include "support/File.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::xopt;

namespace {

std::vector<isa::Instruction> assembleOrDie(const char *Asm) {
  auto K = xasm::assembleKernel(Asm, xasm::SymbolBindings());
  EXPECT_TRUE(static_cast<bool>(K)) << K.message();
  return K->Code;
}

CostReport analyze(const char *Asm, VerifySpec Spec = VerifySpec()) {
  return analyzeCost(assembleOrDie(Asm), Spec, "t");
}

} // namespace

//===----------------------------------------------------------------------===//
// Straight-line cost: exact sums of the per-opcode charging rule.
//===----------------------------------------------------------------------===//

TEST(CostStraightLineTest, ExactSumOfIssueCosts) {
  // mov 0.5 + add 1 + mul 2 + halt 1 = 4.5, exactly.
  CostReport R = analyze("  mov.1.dw vr1 = 5\n"
                         "  add.1.dw vr2 = vr1, 1\n"
                         "  mul.1.dw vr3 = vr2, vr2\n"
                         "  halt\n");
  ASSERT_TRUE(R.bounded());
  EXPECT_TRUE(R.structureOk());
  EXPECT_DOUBLE_EQ(R.minCycles(), 4.5);
  EXPECT_DOUBLE_EQ(R.maxCycles(), 4.5);
  EXPECT_TRUE(R.Loops.empty());
}

TEST(CostStraightLineTest, WideOpsChargeDouble) {
  // A 16-lane ALU op costs twice its 8-lane form: add.16 = 2, halt 1.
  CostReport R = analyze("  add.16.dw [vr0..vr15] = [vr16..vr31], 1\n"
                         "  halt\n");
  ASSERT_TRUE(R.bounded());
  EXPECT_DOUBLE_EQ(R.minCycles(), 3.0);
  EXPECT_DOUBLE_EQ(R.maxCycles(), 3.0);
}

TEST(CostStraightLineTest, PredicatedOffStillCharges) {
  // The cycle model charges issue slots for predicated-off instructions,
  // so predication must not change the static bounds.
  CostReport Plain = analyze("  add.1.dw vr1 = vr1, 1\n  halt\n");
  CostReport Pred = analyze("  (p1) add.1.dw vr1 = vr1, 1\n  halt\n");
  EXPECT_DOUBLE_EQ(Plain.minCycles(), Pred.minCycles());
  EXPECT_DOUBLE_EQ(Plain.maxCycles(), Pred.maxCycles());
}

TEST(CostStraightLineTest, EmptyKernelIsZero) {
  CostReport R = analyzeCost({}, VerifySpec(), "empty");
  EXPECT_TRUE(R.bounded());
  EXPECT_DOUBLE_EQ(R.minCycles(), 0.0);
  EXPECT_DOUBLE_EQ(R.maxCycles(), 0.0);
}

//===----------------------------------------------------------------------===//
// Loop-bound inference.
//===----------------------------------------------------------------------===//

TEST(CostLoopTest, CountedLoopIsExact) {
  // mov 0.5 + 10 * (add 1 + cmp 1 + br 1) + halt 1 = 31.5.
  CostReport R = analyze("  mov.1.dw vr1 = 0\n"
                         "loop:\n"
                         "  add.1.dw vr1 = vr1, 1\n"
                         "  cmp.lt.1.dw p1 = vr1, 10\n"
                         "  br p1, loop\n"
                         "  halt\n");
  ASSERT_TRUE(R.bounded());
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_EQ(R.Loops[0].TripLo, 10);
  EXPECT_EQ(R.Loops[0].TripHi, 10);
  EXPECT_DOUBLE_EQ(R.minCycles(), 31.5);
  EXPECT_DOUBLE_EQ(R.maxCycles(), 31.5);
}

TEST(CostLoopTest, DecrementingLoopIsExact) {
  // vr1 counts 8 -> 0; the body runs 8 times.
  CostReport R = analyze("  mov.1.dw vr1 = 8\n"
                         "loop:\n"
                         "  sub.1.dw vr1 = vr1, 1\n"
                         "  cmp.gt.1.dw p1 = vr1, 0\n"
                         "  br p1, loop\n"
                         "  halt\n");
  ASSERT_TRUE(R.bounded());
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_EQ(R.Loops[0].TripLo, 8);
  EXPECT_EQ(R.Loops[0].TripHi, 8);
}

TEST(CostLoopTest, ZeroTripBypassLowersTheMinimum) {
  // An unknown parameter may branch around the loop entirely: the lower
  // bound takes the bypass path, the upper bound the 100-trip loop.
  VerifySpec Spec;
  Spec.NumScalarParams = 1;
  CostReport R = analyze("  cmp.ge.1.dw p1 = vr0, 5\n"
                         "  br p1, end\n"
                         "loop:\n"
                         "  add.1.dw vr1 = vr1, 1\n"
                         "  cmp.lt.1.dw p2 = vr1, 100\n"
                         "  br p2, loop\n"
                         "end:\n"
                         "  halt\n",
                         Spec);
  ASSERT_TRUE(R.bounded());
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_EQ(R.Loops[0].TripLo, 100);
  EXPECT_EQ(R.Loops[0].TripHi, 100);
  // Bypass: cmp 1 + br 1 + halt 1. Loop path adds 100 * (add 1 + cmp 1
  // + br 1).
  EXPECT_DOUBLE_EQ(R.minCycles(), 3.0);
  EXPECT_DOUBLE_EQ(R.maxCycles(), 303.0);
}

TEST(CostLoopTest, SidDependentTripsUseTheSidRange) {
  // The limit is this shred's id: trip bounds follow [SidLo, SidHi].
  VerifySpec Spec;
  Spec.SidHi = 4;
  CostReport R = analyze("  sid vr1\n"
                         "  mov.1.dw vr2 = 0\n"
                         "loop:\n"
                         "  add.1.dw vr2 = vr2, 1\n"
                         "  cmp.lt.1.dw p1 = vr2, vr1\n"
                         "  br p1, loop\n"
                         "  halt\n",
                         Spec);
  ASSERT_TRUE(R.bounded());
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_EQ(R.Loops[0].TripLo, 1);
  EXPECT_EQ(R.Loops[0].TripHi, 4);
}

TEST(CostLoopTest, ParamRangeSharpensTheBound) {
  // Unconstrained parameter limit: unbounded. With a declared range the
  // same kernel gets finite trips — the exochi-run --lint sharpening
  // model applied to cost.
  const char *Asm = "  mov.1.dw vr1 = 0\n"
                    "loop:\n"
                    "  add.1.dw vr1 = vr1, 1\n"
                    "  cmp.lt.1.dw p1 = vr1, vr0\n"
                    "  br p1, loop\n"
                    "  halt\n";
  VerifySpec Unknown;
  Unknown.NumScalarParams = 1;
  CostReport RU = analyze(Asm, Unknown);
  EXPECT_FALSE(RU.bounded());
  EXPECT_TRUE(RU.structureOk()); // shape fine, only the trip is open
  EXPECT_GE(RU.Diags.count(Severity::Warning), 1u);

  VerifySpec Ranged = Unknown;
  Ranged.ParamRanges[0] = Range{1, 20};
  CostReport RR = analyze(Asm, Ranged);
  ASSERT_TRUE(RR.bounded());
  ASSERT_EQ(RR.Loops.size(), 1u);
  EXPECT_EQ(RR.Loops[0].TripLo, 1);
  EXPECT_EQ(RR.Loops[0].TripHi, 20);
}

TEST(CostLoopTest, NestedLoopsMultiply) {
  CostReport R = analyze("  mov.1.dw vr1 = 0\n"
                         "outer:\n"
                         "  mov.1.dw vr2 = 0\n"
                         "inner:\n"
                         "  add.1.dw vr2 = vr2, 1\n"
                         "  cmp.lt.1.dw p1 = vr2, 3\n"
                         "  br p1, inner\n"
                         "  add.1.dw vr1 = vr1, 1\n"
                         "  cmp.lt.1.dw p2 = vr1, 4\n"
                         "  br p2, outer\n"
                         "  halt\n");
  ASSERT_TRUE(R.bounded());
  ASSERT_EQ(R.Loops.size(), 2u); // innermost first
  EXPECT_EQ(R.Loops[0].TripLo, 3);
  EXPECT_EQ(R.Loops[0].TripHi, 3);
  EXPECT_EQ(R.Loops[1].TripLo, 4);
  EXPECT_EQ(R.Loops[1].TripHi, 4);
  // mov 0.5 + 4 * (mov 0.5 + 3*(1+1+1) + add 1 + cmp 1 + br 1) + halt 1.
  EXPECT_DOUBLE_EQ(R.minCycles(), 51.5);
  EXPECT_DOUBLE_EQ(R.maxCycles(), 51.5);
}

//===----------------------------------------------------------------------===//
// Structure verdicts: self-loops, irreducible graphs, stalls, spawn.
//===----------------------------------------------------------------------===//

TEST(CostStructureTest, SelfSpinIsUnboundedButReducible) {
  CostReport R = analyze("spin:\n"
                         "  jmp spin\n");
  EXPECT_FALSE(R.bounded());
  EXPECT_TRUE(R.Reducible);
  ASSERT_EQ(R.Loops.size(), 1u);
  EXPECT_EQ(R.Loops[0].BodySize, 1u); // single-node self-loop
  EXPECT_FALSE(R.Loops[0].bounded());
  EXPECT_GE(R.Diags.count(Severity::Warning), 1u);
}

TEST(CostStructureTest, IrreducibleGraphIsDetected) {
  // The entry can jump into the middle of the loop, so the retreating
  // edge's target does not dominate its source.
  CostReport R = analyze("  cmp.eq.1.dw p1 = vr1, 0\n"
                         "  br p1, mid\n"
                         "top:\n"
                         "  add.1.dw vr2 = vr2, 1\n"
                         "mid:\n"
                         "  add.1.dw vr2 = vr2, 1\n"
                         "  cmp.lt.1.dw p2 = vr2, 10\n"
                         "  br p2, top\n"
                         "  halt\n");
  EXPECT_FALSE(R.Reducible);
  EXPECT_FALSE(R.bounded());
  EXPECT_FALSE(R.structureOk());
  EXPECT_GE(R.Diags.count(Severity::Warning), 1u);
}

TEST(CostStructureTest, UnprovenWaitForcesUnbounded) {
  CostReport R = analyze("  wait vr1\n"
                         "  halt\n");
  EXPECT_FALSE(R.StallsProven);
  EXPECT_FALSE(R.bounded());
  EXPECT_FALSE(R.structureOk());
  EXPECT_GE(R.Diags.count(Severity::Warning), 1u);
}

TEST(CostStructureTest, MatchedXmitProvesTheWait) {
  CostReport R = analyze("  xmit vr2, vr1 = vr3\n"
                         "  wait vr1\n"
                         "  halt\n");
  EXPECT_TRUE(R.StallsProven);
  EXPECT_TRUE(R.bounded());
  EXPECT_TRUE(R.structureOk());
}

TEST(CostStructureTest, SpawnIsFlagged) {
  CostReport R = analyze("  spawn 0\n"
                         "  halt\n");
  EXPECT_TRUE(R.SpawnsChildren);
  EXPECT_TRUE(R.bounded()); // per-shred bound itself is still finite
}

//===----------------------------------------------------------------------===//
// Device differential: the measured functional IssueCycles counter must
// land exactly inside the static envelope (here min == max, so exactly
// *on* it), scaled by the shred count.
//===----------------------------------------------------------------------===//

TEST(CostEnvelopeTest, DeviceIssueCyclesMatchExactStaticBound) {
  const char *Asm = "  mov.1.dw vr1 = 0\n"
                    "loop:\n"
                    "  add.1.dw vr1 = vr1, 1\n"
                    "  cmp.lt.1.dw p1 = vr1, 10\n"
                    "  br p1, loop\n"
                    "  halt\n";
  CostReport R = analyze(Asm);
  ASSERT_TRUE(R.bounded());
  ASSERT_DOUBLE_EQ(R.minCycles(), R.maxCycles());

  exo::ExoPlatform P;
  auto K = xasm::assembleKernel(Asm, xasm::SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K)) << K.message();
  gma::KernelImage Img;
  Img.Code = K->Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));
  constexpr unsigned Shreds = 3;
  for (unsigned S = 0; S < Shreds; ++S) {
    gma::ShredDescriptor D;
    D.KernelId = Kid;
    P.device().enqueueShred(std::move(D));
  }
  auto Exit = P.device().run(0.0);
  ASSERT_TRUE(static_cast<bool>(Exit)) << Exit.message();
  EXPECT_DOUBLE_EQ(P.device().stats().IssueCycles, Shreds * R.minCycles());
}

//===----------------------------------------------------------------------===//
// Table 2: every production kernel gets finite bounds under its real
// dispatch envelope, and the measured counters of full runs — at
// SimThreads 1 and 4, on both backends — fall inside the envelope.
//===----------------------------------------------------------------------===//

namespace {

using kernels::MediaWorkload;

struct WorkloadRig {
  explicit WorkloadRig(std::unique_ptr<MediaWorkload> WL)
      : Workload(std::move(WL)), RT(Platform) {
    chi::ProgramBuilder PB;
    cantFail(Workload->compile(PB));
    Binary = PB.take();
    cantFail(RT.loadBinary(Binary));
    cantFail(Workload->setup(RT));
  }

  std::unique_ptr<MediaWorkload> Workload;
  exo::ExoPlatform Platform;
  chi::Runtime RT;
  fatbin::FatBinary Binary;
};

std::unique_ptr<MediaWorkload> makeSmallWorkload(int Index) {
  using namespace kernels;
  switch (Index) {
  case 0:
    return createLinearFilter(64, 32);
  case 1:
    return createSepiaTone(64, 32);
  case 2:
    return createFGT(64, 32);
  case 3:
    return createBicubic(64, 32, 3);
  case 4:
    return createKalman(64, 32, 3);
  case 5:
    return createFMD(64, 32, 12);
  case 6:
    return createAlphaBlend(64, 32, 3);
  case 7:
    return createBOB(64, 32, 4);
  case 8:
    return createADVDI(64, 32, 4);
  default:
    return createProcAmp(64, 32, 3);
  }
}

std::string kernelCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"LinearFilter", "SepiaTone", "FGT",
                                "Bicubic",      "Kalman",    "FMD",
                                "AlphaBlend",   "BOB",       "ADVDI",
                                "ProcAmp"};
  return Names[Info.param];
}

/// The workload's static cost report under its real dispatch envelope:
/// every scalar parameter's range is the hull of the values the workload
/// actually passes.
CostReport workloadReport(const WorkloadRig &Rig) {
  const MediaWorkload &WL = *Rig.Workload;
  const fatbin::CodeSection *Sec = Rig.Binary.findByName(WL.name());
  EXPECT_NE(Sec, nullptr);
  auto Prog = isa::decodeProgram(Sec->Code);
  EXPECT_TRUE(static_cast<bool>(Prog)) << Prog.message();
  VerifySpec Spec;
  Spec.NumScalarParams = static_cast<unsigned>(Sec->ScalarParams.size());
  Spec.NumSurfaceSlots = static_cast<int32_t>(Sec->SurfaceParams.size());
  for (unsigned P = 0; P < Spec.NumScalarParams; ++P) {
    auto Hull = Rig.Workload->scalarParamHull(P);
    Spec.ParamRanges[P] = Range{Hull.first, Hull.second};
  }
  return analyzeCost(*Prog, Spec, WL.name());
}

} // namespace

class CostTable2Test : public ::testing::TestWithParam<int> {};

TEST_P(CostTable2Test, MeasuredCyclesFallInsideTheStaticEnvelope) {
  WorkloadRig Rig(makeSmallWorkload(GetParam()));
  CostReport R = workloadReport(Rig);
  ASSERT_TRUE(R.bounded()) << R.Diags.warnings().size() << " warnings";
  ASSERT_TRUE(R.structureOk());
  ASSERT_GT(R.minCycles(), 0.0);

  MediaWorkload &WL = *Rig.Workload;
  for (int64_t SimThreads : {1, 4}) {
    Rig.RT.setFeature(chi::Feature::SimThreads, SimThreads);
    for (int64_t Backend : {0, 1}) {
      Rig.RT.setFeature(chi::Feature::Backend, Backend);
      auto H = WL.dispatchDevice(Rig.RT, 0, WL.totalStrips());
      ASSERT_TRUE(static_cast<bool>(H)) << H.message();
      const chi::RegionStats *St = Rig.RT.regionStats(*H);
      ASSERT_NE(St, nullptr);
      const double Shreds =
          static_cast<double>(St->Device.ShredsExecuted);
      EXPECT_EQ(St->Device.ShredsExecuted, WL.totalStrips());
      EXPECT_GE(St->Device.IssueCycles, Shreds * R.minCycles())
          << WL.name() << " simthreads=" << SimThreads
          << " backend=" << Backend;
      EXPECT_LE(St->Device.IssueCycles, Shreds * R.maxCycles())
          << WL.name() << " simthreads=" << SimThreads
          << " backend=" << Backend;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, CostTable2Test, ::testing::Range(0, 10),
                         kernelCaseName);

// The production registry stays clean of the new lint findings: no dead
// stores, no unreachable blocks in any Table 2 kernel at paper scale.
TEST(CostTable2Test, RegistryKernelsHaveNoDeadStoreOrUnreachableNotes) {
  chi::ProgramBuilder PB;
  auto Workloads = kernels::createTable2Workloads(0.25);
  for (const auto &W : Workloads) {
    cantFail(W->compile(PB));
    const LintReport *R = PB.lintReport(W->name());
    ASSERT_NE(R, nullptr) << W->name();
    for (const LintDiag &D : R->Diags) {
      EXPECT_EQ(D.Msg.find("dead store"), std::string::npos)
          << W->name() << ": " << D.Msg;
      EXPECT_EQ(D.Msg.find("unreachable"), std::string::npos)
          << W->name() << ": " << D.Msg;
    }
  }
}

// Paper-scale registry bounds stay finite too (what exochi-lint
// --registry enforces in CI, asserted here without the process hop).
TEST(CostTable2Test, RegistryKernelsAtPaperScaleAreBounded) {
  chi::ProgramBuilder PB;
  auto Workloads = kernels::createTable2Workloads(0.25);
  for (const auto &W : Workloads) {
    cantFail(W->compile(PB));
    const fatbin::CodeSection *Sec = PB.binary().findByName(W->name());
    ASSERT_NE(Sec, nullptr) << W->name();
    auto Prog = isa::decodeProgram(Sec->Code);
    ASSERT_TRUE(static_cast<bool>(Prog)) << Prog.message();
    VerifySpec Spec;
    Spec.NumScalarParams = static_cast<unsigned>(Sec->ScalarParams.size());
    Spec.NumSurfaceSlots = static_cast<int32_t>(Sec->SurfaceParams.size());
    for (unsigned P = 0; P < Spec.NumScalarParams; ++P) {
      auto Hull = W->scalarParamHull(P);
      Spec.ParamRanges[P] = Range{Hull.first, Hull.second};
    }
    CostReport R = analyzeCost(*Prog, Spec, W->name());
    EXPECT_TRUE(R.bounded()) << W->name();
    EXPECT_TRUE(R.structureOk()) << W->name();
  }
}

//===----------------------------------------------------------------------===//
// docs/ISA.md embeds the generated cost table verbatim.
//===----------------------------------------------------------------------===//

TEST(CostDocsTest, IsaDocEmbedsTheGeneratedTable) {
  auto Bytes = readFileBytes(std::string(EXOCHI_SOURCE_DIR) + "/docs/ISA.md");
  ASSERT_TRUE(static_cast<bool>(Bytes)) << Bytes.message();
  std::string Doc(Bytes->begin(), Bytes->end());
  const std::string Begin = "<!-- BEGIN GENERATED: xopt::costTableMarkdown -->\n";
  const std::string End = "<!-- END GENERATED: xopt::costTableMarkdown -->";
  size_t B = Doc.find(Begin);
  ASSERT_NE(B, std::string::npos) << "missing BEGIN marker in docs/ISA.md";
  size_t E = Doc.find(End, B);
  ASSERT_NE(E, std::string::npos) << "missing END marker in docs/ISA.md";
  EXPECT_EQ(Doc.substr(B + Begin.size(), E - B - Begin.size()),
            costTableMarkdown())
      << "docs/ISA.md cost table is stale; regenerate with "
         "`exochi-lint --cost-table`";
}
