//===- tests/kernels_test.cpp - Media kernel tests ------------------------------===//

#include "kernels/Workloads.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::kernels;

namespace {

/// Builds a full test stack around one workload.
struct WorkloadRig {
  explicit WorkloadRig(std::unique_ptr<MediaWorkload> WL)
      : Workload(std::move(WL)), RT(Platform) {
    chi::ProgramBuilder PB;
    cantFail(Workload->compile(PB));
    Binary = PB.take();
    cantFail(RT.loadBinary(Binary));
    cantFail(Workload->setup(RT));
  }

  std::unique_ptr<MediaWorkload> Workload;
  exo::ExoPlatform Platform;
  chi::Runtime RT;
  fatbin::FatBinary Binary;
};

/// Small-size factory for every Table 2 kernel (index 0..9).
std::unique_ptr<MediaWorkload> makeSmallWorkload(int Index) {
  switch (Index) {
  case 0:
    return createLinearFilter(64, 32);
  case 1:
    return createSepiaTone(64, 32);
  case 2:
    return createFGT(64, 32);
  case 3:
    return createBicubic(64, 32, 3);
  case 4:
    return createKalman(64, 32, 3);
  case 5:
    return createFMD(64, 32, 12);
  case 6:
    return createAlphaBlend(64, 32, 3);
  case 7:
    return createBOB(64, 32, 4);
  case 8:
    return createADVDI(64, 32, 4);
  default:
    return createProcAmp(64, 32, 3);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Device/host equivalence: the XGMA and IA32 implementations of every
// kernel must produce bit-identical output.
//===----------------------------------------------------------------------===//

class KernelEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelEquivalenceTest, DeviceMatchesHostReference) {
  WorkloadRig Rig(makeSmallWorkload(GetParam()));
  Error E = Rig.Workload->verify(Rig.RT);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
}

namespace {
std::string kernelCaseName(const ::testing::TestParamInfo<int> &Info) {
  static const char *Names[] = {"LinearFilter", "SepiaTone", "FGT",
                                "Bicubic",      "Kalman",    "FMD",
                                "AlphaBlend",   "BOB",       "ADVDI",
                                "ProcAmp"};
  return Names[Info.param];
}
} // namespace

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelEquivalenceTest,
                         ::testing::Range(0, 10), kernelCaseName);

//===----------------------------------------------------------------------===//
// Table 2 shred counts at paper input sizes.
//===----------------------------------------------------------------------===//

TEST(Table2ShredsTest, CountsMatchPaper) {
  struct Row {
    std::unique_ptr<MediaWorkload> WL;
    uint64_t Paper;
    double Tolerance; // relative
  };
  Row Rows[] = {
      {createLinearFilter(640, 480), 6480, 0.03},
      {createLinearFilter(2000, 2000), 83500, 0.01},
      {createSepiaTone(640, 480), 4800, 0.0},
      {createSepiaTone(2000, 2000), 62500, 0.0},
      {createFGT(1024, 768), 96, 0.0},
      {createBicubic(720, 480, 30), 2700, 0.0},
      {createKalman(512, 256, 30), 4096, 0.07},
      {createFMD(720, 480, 60), 1276, 0.06},
      {createAlphaBlend(720, 480, 30), 2700, 0.0},
      {createBOB(720, 480, 30), 2700, 0.0},
      {createADVDI(720, 480, 30), 2700, 0.0},
      {createProcAmp(720, 480, 30), 2700, 0.0},
  };
  for (const Row &R : Rows) {
    double Ours = static_cast<double>(R.WL->totalStrips());
    double Paper = static_cast<double>(R.Paper);
    EXPECT_NEAR(Ours, Paper, Paper * R.Tolerance + 0.5)
        << R.WL->abbrev() << " " << R.WL->outGeometry().W << "x"
        << R.WL->outGeometry().H;
  }
}

//===----------------------------------------------------------------------===//
// FMD cadence analysis.
//===----------------------------------------------------------------------===//

TEST(FmdTest, DetectsTelecineCadenceEndToEnd) {
  WorkloadRig Rig(createFMD(64, 32, 20));
  auto H = Rig.Workload->dispatchDevice(Rig.RT, 0,
                                        Rig.Workload->totalStrips());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();

  // Reduce the device-produced metrics (written by the shreds into the
  // shared SAD surface) and detect the pulldown pattern.
  std::vector<uint64_t> Sads = fmdFrameSads(*Rig.Workload, Rig.Platform);
  ASSERT_EQ(Sads.size(), 20u);
  EXPECT_TRUE(detectPulldownCadence(Sads));
}

TEST(FmdTest, CadenceDetectorAcceptsPulldownPattern) {
  // AABBB cadence: SAD sequence big at film-frame changes, ~0 at repeats.
  std::vector<uint64_t> Sads;
  Sads.push_back(0); // frame 0 vs itself
  bool Fresh[] = {false, true, false, false, true}; // period-5 pattern
  for (int K = 1; K < 30; ++K)
    Sads.push_back(Fresh[K % 5] ? 1000000 + (K * 13) % 1000 : (K * 7) % 100);
  EXPECT_TRUE(detectPulldownCadence(Sads));
}

TEST(FmdTest, CadenceDetectorRejectsProgressiveVideo) {
  // Progressive content: every frame differs.
  std::vector<uint64_t> Sads;
  Sads.push_back(0);
  for (int K = 1; K < 30; ++K)
    Sads.push_back(900000 + (K * 131) % 10000);
  EXPECT_FALSE(detectPulldownCadence(Sads));

  // Static content: nothing ever changes.
  std::vector<uint64_t> Zero(30, 0);
  EXPECT_FALSE(detectPulldownCadence(Zero));
}

//===----------------------------------------------------------------------===//
// Cooperative split: host strips + device strips compose into the same
// image as the full host reference (Figure 9/10 functional correctness).
//===----------------------------------------------------------------------===//

TEST(CooperativeKernelTest, SplitExecutionComposes) {
  WorkloadRig Rig(makeSmallWorkload(1)); // SepiaTone
  MediaWorkload &WL = *Rig.Workload;
  uint64_t Total = WL.totalStrips();
  uint64_t Half = Total / 2;

  // Device computes the second half; the host computes (and publishes)
  // the first half. hostRun also fills the host mirror, and the full
  // reference is completed by hostCompute over the rest.
  auto H = WL.dispatchDevice(Rig.RT, Half, Total);
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  cantFail(WL.hostRun(Rig.RT, 0, Half));
  cantFail(WL.hostCompute(Half, Total)); // completes the host reference

  // The composed shared image must equal the full host reference.
  Error E = WL.compareSharedToReference(Rig.RT);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
}

//===----------------------------------------------------------------------===//
// Timing smoke tests.
//===----------------------------------------------------------------------===//

TEST(KernelTimingTest, DeviceBeatsCpuOnComputeKernel) {
  // SepiaTone at a moderate size: the 32-thread wide-SIMD device should
  // beat the 4-wide SSE model comfortably (Figure 7's premise).
  WorkloadRig Rig(createSepiaTone(160, 96));
  MediaWorkload &WL = *Rig.Workload;
  auto H = WL.dispatchDevice(Rig.RT, 0, WL.totalStrips());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  double DeviceNs = Rig.RT.regionStats(*H)->totalNs();

  cpu::WorkEstimate Work = WL.hostWorkFor(0, WL.totalStrips());
  mem::MemoryBus Bus; // fresh bus: CPU-alone scenario
  cpu::CpuModel Cpu(cpu::CpuConfig(), Bus);
  double CpuNs = Cpu.execute(0.0, Work);

  EXPECT_GT(CpuNs, DeviceNs);
}

TEST(KernelTimingTest, WorkEstimatesScaleWithStrips) {
  auto WL = createProcAmp(64, 32, 4);
  cpu::WorkEstimate Full = WL->hostWorkFor(0, WL->totalStrips());
  cpu::WorkEstimate Half = WL->hostWorkFor(0, WL->totalStrips() / 2);
  EXPECT_NEAR(static_cast<double>(Half.VectorOps),
              static_cast<double>(Full.VectorOps) / 2,
              static_cast<double>(Full.VectorOps) * 0.1);
  EXPECT_GT(Full.BytesRead, 0u);
  EXPECT_GT(Full.BytesWritten, 0u);
}

//===----------------------------------------------------------------------===//
// Size sweep: equivalence must hold for partial tiles, partial strips,
// and non-square geometries.
//===----------------------------------------------------------------------===//

struct SizeCase {
  uint32_t W, H, Frames;
};

class KernelSizeSweepTest
    : public ::testing::TestWithParam<std::tuple<int, SizeCase>> {};

TEST_P(KernelSizeSweepTest, EquivalenceAcrossGeometries) {
  auto [Kernel, Size] = GetParam();
  std::unique_ptr<MediaWorkload> WL;
  switch (Kernel) {
  case 0:
    WL = createLinearFilter(Size.W, Size.H);
    break;
  case 1:
    WL = createBOB(Size.W, Size.H, Size.Frames);
    break;
  case 2:
    WL = createBicubic(Size.W, Size.H, Size.Frames);
    break;
  default:
    WL = createKalman(Size.W, Size.H, Size.Frames);
    break;
  }
  WorkloadRig Rig(std::move(WL));
  Error E = Rig.Workload->verify(Rig.RT);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
}

namespace {

std::vector<std::tuple<int, SizeCase>> sizeSweepCases() {
  const SizeCase Sizes[] = {
      {40, 24, 2}, {72, 40, 3}, {104, 56, 2}, {256, 18, 2}};
  std::vector<std::tuple<int, SizeCase>> Out;
  for (int Kernel = 0; Kernel < 4; ++Kernel)
    for (const SizeCase &S : Sizes)
      Out.emplace_back(Kernel, S);
  return Out;
}

std::string sizeCaseName(
    const ::testing::TestParamInfo<std::tuple<int, SizeCase>> &Info) {
  static const char *Names[] = {"LinearFilter", "BOB", "Bicubic", "Kalman"};
  const SizeCase &S = std::get<1>(Info.param);
  return std::string(Names[std::get<0>(Info.param)]) + "_" +
         std::to_string(S.W) + "x" + std::to_string(S.H) + "x" +
         std::to_string(S.Frames);
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Geometries, KernelSizeSweepTest,
                         ::testing::ValuesIn(sizeSweepCases()),
                         sizeCaseName);
