//===- tests/isa_test.cpp - Unit tests for src/isa ---------------------------===//

#include "isa/Encoding.h"
#include "isa/Isa.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::isa;

namespace {

Instruction makeAdd8() {
  Instruction I;
  I.Op = Opcode::Add;
  I.Ty = ElemType::I32;
  I.Width = 8;
  I.Dst = Operand::regRange(18, 25);
  I.Src0 = Operand::regRange(2, 9);
  I.Src1 = Operand::regRange(10, 17);
  return I;
}

} // namespace

TEST(IsaTest, ElemTypeProperties) {
  EXPECT_STREQ(elemTypeName(ElemType::I8), "b");
  EXPECT_STREQ(elemTypeName(ElemType::I32), "dw");
  EXPECT_STREQ(elemTypeName(ElemType::F64), "df");
  EXPECT_EQ(elemTypeSize(ElemType::I8), 1u);
  EXPECT_EQ(elemTypeSize(ElemType::I16), 2u);
  EXPECT_EQ(elemTypeSize(ElemType::F32), 4u);
  EXPECT_EQ(elemTypeSize(ElemType::F64), 8u);
}

TEST(IsaTest, OperandFactories) {
  Operand R = Operand::reg(5);
  EXPECT_EQ(R.regCount(), 1u);
  Operand RR = Operand::regRange(2, 9);
  EXPECT_EQ(RR.regCount(), 8u);
  Operand I = Operand::imm(-3);
  EXPECT_EQ(I.Imm, -3);
  EXPECT_EQ(I.regCount(), 0u);
}

TEST(IsaValidateTest, PaperExampleValid) {
  EXPECT_EQ(validate(makeAdd8()), "");
}

TEST(IsaValidateTest, WidthMismatchRejected) {
  Instruction I = makeAdd8();
  I.Dst = Operand::regRange(18, 24); // 7 regs for 8 lanes
  EXPECT_NE(validate(I), "");
}

TEST(IsaValidateTest, BroadcastSourceAllowed) {
  Instruction I = makeAdd8();
  I.Src1 = Operand::reg(3); // scalar broadcast
  EXPECT_EQ(validate(I), "");
}

TEST(IsaValidateTest, ImmediateSourceAllowed) {
  Instruction I = makeAdd8();
  I.Src1 = Operand::imm(100);
  EXPECT_EQ(validate(I), "");
}

TEST(IsaValidateTest, ImmediateDestinationRejected) {
  Instruction I = makeAdd8();
  I.Dst = Operand::imm(1);
  EXPECT_NE(validate(I), "");
}

TEST(IsaValidateTest, WidthOutOfRange) {
  Instruction I = makeAdd8();
  I.Width = 0;
  EXPECT_NE(validate(I), "");
  I.Width = 17;
  EXPECT_NE(validate(I), "");
}

TEST(IsaValidateTest, F64NeedsRegisterPairs) {
  Instruction I;
  I.Op = Opcode::Add;
  I.Ty = ElemType::F64;
  I.Width = 4;
  I.Dst = Operand::regRange(0, 7); // 8 regs = 4 f64 lanes
  I.Src0 = Operand::regRange(8, 15);
  I.Src1 = Operand::regRange(16, 23);
  EXPECT_EQ(validate(I), "");

  I.Dst = Operand::regRange(0, 3); // 4 regs: too few
  EXPECT_NE(validate(I), "");
}

TEST(IsaValidateTest, CmpWritesPredicate) {
  Instruction I;
  I.Op = Opcode::Cmp;
  I.Cmp = CmpOp::Lt;
  I.Ty = ElemType::I32;
  I.Width = 4;
  I.Dst = Operand::pred(3);
  I.Src0 = Operand::regRange(0, 3);
  I.Src1 = Operand::imm(10);
  EXPECT_EQ(validate(I), "");

  I.Dst = Operand::reg(3);
  EXPECT_NE(validate(I), "");
}

TEST(IsaValidateTest, SelRequiresPredicate) {
  Instruction I;
  I.Op = Opcode::Sel;
  I.Ty = ElemType::I32;
  I.Width = 4;
  I.Dst = Operand::regRange(0, 3);
  I.Src0 = Operand::regRange(4, 7);
  I.Src1 = Operand::regRange(8, 11);
  EXPECT_NE(validate(I), ""); // no predicate set
  I.PredReg = 2;
  EXPECT_EQ(validate(I), "");
}

TEST(IsaValidateTest, LoadShape) {
  Instruction I;
  I.Op = Opcode::Ld;
  I.Ty = ElemType::I32;
  I.Width = 8;
  I.Dst = Operand::regRange(2, 9);
  I.Src0 = Operand::surface(0);
  I.Src1 = Operand::reg(1);
  I.Src2 = Operand::imm(0);
  EXPECT_EQ(validate(I), "");

  I.Src0 = Operand::reg(0); // not a surface
  EXPECT_NE(validate(I), "");
}

TEST(IsaValidateTest, SampleShape) {
  Instruction I;
  I.Op = Opcode::Sample;
  I.Ty = ElemType::F32;
  I.Width = 4;
  I.Dst = Operand::regRange(10, 13);
  I.Src0 = Operand::surface(1);
  I.Src1 = Operand::reg(0);
  I.Src2 = Operand::reg(1);
  EXPECT_EQ(validate(I), "");

  I.Width = 8;
  I.Dst = Operand::regRange(10, 17);
  EXPECT_NE(validate(I), ""); // sample must be .4.f
}

TEST(IsaValidateTest, BranchNeedsLabelAndPredicate) {
  Instruction I;
  I.Op = Opcode::Br;
  I.Src0 = Operand::label(3);
  EXPECT_NE(validate(I), ""); // missing predicate
  I.PredReg = 0;
  EXPECT_EQ(validate(I), "");
  I.Src0 = Operand::imm(3);
  EXPECT_NE(validate(I), "");
}

TEST(IsaDisasmTest, RoundTripsSyntax) {
  EXPECT_EQ(disassemble(makeAdd8()),
            "add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]");

  Instruction Shl;
  Shl.Op = Opcode::Shl;
  Shl.Ty = ElemType::I16;
  Shl.Width = 1;
  Shl.Dst = Operand::reg(1);
  Shl.Src0 = Operand::reg(0);
  Shl.Src1 = Operand::imm(3);
  EXPECT_EQ(disassemble(Shl), "shl.1.w vr1 = vr0, 3");

  Instruction St;
  St.Op = Opcode::St;
  St.Ty = ElemType::I32;
  St.Width = 8;
  St.Dst = Operand::regRange(18, 25);
  St.Src0 = Operand::surface(2);
  St.Src1 = Operand::reg(1);
  St.Src2 = Operand::imm(0);
  EXPECT_EQ(disassemble(St), "st.8.dw (surf2, vr1, 0) = [vr18..vr25]");
}

TEST(IsaDisasmTest, PredicationPrefix) {
  Instruction I = makeAdd8();
  I.PredReg = 3;
  I.PredNegate = true;
  EXPECT_EQ(disassemble(I),
            "(!p3) add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]");
}

TEST(EncodingTest, SingleInstructionRoundTrip) {
  Instruction I = makeAdd8();
  std::vector<uint8_t> Bytes;
  encodeInstruction(I, Bytes);
  ASSERT_EQ(Bytes.size(), InstrBytes);
  auto D = decodeInstruction(Bytes.data());
  ASSERT_TRUE(static_cast<bool>(D));
  EXPECT_TRUE(I == *D);
}

TEST(EncodingTest, RejectsBadOpcodeByte) {
  std::vector<uint8_t> Bytes;
  encodeInstruction(makeAdd8(), Bytes);
  Bytes[0] = 0xff;
  auto D = decodeInstruction(Bytes.data());
  EXPECT_FALSE(static_cast<bool>(D));
}

TEST(EncodingTest, RejectsBadSizeProgram) {
  std::vector<uint8_t> Bytes(InstrBytes + 1, 0);
  auto P = decodeProgram(Bytes);
  EXPECT_FALSE(static_cast<bool>(P));
}

TEST(EncodingTest, ProgramRoundTrip) {
  std::vector<Instruction> Prog;
  Prog.push_back(makeAdd8());
  Instruction Halt;
  Halt.Op = Opcode::Halt;
  Prog.push_back(Halt);

  auto Bytes = encodeProgram(Prog);
  auto Back = decodeProgram(Bytes);
  ASSERT_TRUE(static_cast<bool>(Back));
  ASSERT_EQ(Back->size(), 2u);
  EXPECT_TRUE((*Back)[0] == Prog[0]);
  EXPECT_TRUE((*Back)[1] == Prog[1]);
}

//===----------------------------------------------------------------------===//
// Property test: random valid instructions round-trip through the encoder.
//===----------------------------------------------------------------------===//

namespace {

/// Generates a random *valid* ALU instruction.
Instruction randomAluInstruction(Rng &R) {
  static const Opcode Ops[] = {Opcode::Mov, Opcode::Add, Opcode::Sub,
                               Opcode::Mul, Opcode::Min, Opcode::Max,
                               Opcode::And, Opcode::Or,  Opcode::Xor};
  static const ElemType Tys[] = {ElemType::I8, ElemType::I16, ElemType::I32,
                                 ElemType::F32};
  Instruction I;
  I.Op = Ops[R.nextBelow(std::size(Ops))];
  I.Ty = Tys[R.nextBelow(std::size(Tys))];
  I.Width = static_cast<uint8_t>(R.nextInRange(1, 16));

  auto RandRegOperand = [&](unsigned Lanes) {
    unsigned Lo = static_cast<unsigned>(R.nextBelow(NumVRegs - Lanes + 1));
    return Lanes == 1 ? Operand::reg(static_cast<uint8_t>(Lo))
                      : Operand::regRange(static_cast<uint8_t>(Lo),
                                          static_cast<uint8_t>(Lo + Lanes - 1));
  };

  I.Dst = RandRegOperand(I.Width);
  I.Src0 = R.nextBelow(4) == 0 ? Operand::imm(static_cast<int32_t>(R.next()))
                               : RandRegOperand(I.Width);
  I.Src1 = R.nextBelow(4) == 0 ? Operand::imm(static_cast<int32_t>(R.next()))
                               : RandRegOperand(I.Width);
  if (R.nextBelow(3) == 0) {
    I.PredReg = static_cast<uint8_t>(R.nextBelow(NumPRegs));
    I.PredNegate = R.nextBelow(2) == 0;
  }
  return I;
}

} // namespace

class EncodingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EncodingPropertyTest, RandomProgramsRoundTrip) {
  Rng R(GetParam());
  std::vector<Instruction> Prog;
  unsigned N = static_cast<unsigned>(R.nextInRange(1, 64));
  for (unsigned K = 0; K < N; ++K) {
    Instruction I = randomAluInstruction(R);
    ASSERT_EQ(validate(I), "") << disassemble(I);
    Prog.push_back(I);
  }
  auto Bytes = encodeProgram(Prog);
  EXPECT_EQ(Bytes.size(), Prog.size() * InstrBytes);
  auto Back = decodeProgram(Bytes);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  ASSERT_EQ(Back->size(), Prog.size());
  for (size_t K = 0; K < Prog.size(); ++K)
    EXPECT_TRUE(Prog[K] == (*Back)[K]) << disassemble(Prog[K]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));
