//===- tests/xopt_test.cpp - Optimizer, lint, and printer tests ---------------===//

#include "xopt/Cfg.h"
#include "xopt/Lint.h"
#include "xopt/Peephole.h"

#include "chi/ProgramBuilder.h"
#include "isa/Encoding.h"
#include "kernels/Workloads.h"
#include "support/Format.h"
#include "exo/ExoPlatform.h"
#include "support/Random.h"
#include "xasm/Assembler.h"
#include "xasm/Printer.h"

#include <gtest/gtest.h>

using namespace exochi;
using namespace exochi::isa;
using namespace exochi::xopt;

namespace {

std::vector<Instruction> assembleOrDie(const char *Asm) {
  auto K = xasm::assembleKernel(Asm, xasm::SymbolBindings());
  EXPECT_TRUE(static_cast<bool>(K)) << K.message();
  return K->Code;
}

} // namespace

//===----------------------------------------------------------------------===//
// Use/def and liveness
//===----------------------------------------------------------------------===//

TEST(UseDefTest, AluReadsSourcesWritesDest) {
  auto Code = assembleOrDie("  add.4.dw [vr8..vr11] = [vr0..vr3], vr5\n");
  UseDef UD = useDef(Code[0]);
  EXPECT_TRUE(UD.Use.test(0) && UD.Use.test(3) && UD.Use.test(5));
  EXPECT_FALSE(UD.Use.test(8));
  EXPECT_TRUE(UD.Def.test(8) && UD.Def.test(11));
  EXPECT_FALSE(UD.HasSideEffects);
}

TEST(UseDefTest, MacReadsItsAccumulator) {
  auto Code = assembleOrDie("  mac.2.dw [vr8..vr9] = [vr0..vr1], 3\n");
  UseDef UD = useDef(Code[0]);
  EXPECT_TRUE(UD.Use.test(8) && UD.Use.test(9)); // accumulator read
  EXPECT_TRUE(UD.Def.test(8));
}

TEST(UseDefTest, PredicationMakesWritePartial) {
  auto Code = assembleOrDie("  (p2) add.2.dw [vr8..vr9] = [vr0..vr1], 1\n");
  UseDef UD = useDef(Code[0]);
  EXPECT_TRUE(UD.Use.test(predLoc(2)));
  EXPECT_TRUE(UD.Use.test(8)); // merge with old value
  EXPECT_TRUE(UD.Def.test(8));
}

TEST(UseDefTest, StoreIsSideEffectingAndReadsData) {
  auto Code = assembleOrDie("  st.2.dw (surf0, vr4, 0) = [vr8..vr9]\n");
  UseDef UD = useDef(Code[0]);
  EXPECT_TRUE(UD.HasSideEffects);
  EXPECT_TRUE(UD.Use.test(8) && UD.Use.test(9) && UD.Use.test(4));
  EXPECT_TRUE(UD.Def.none());
}

TEST(UseDefTest, CmpDefinesPredicate) {
  auto Code = assembleOrDie("  cmp.lt.2.dw p3 = [vr0..vr1], 7\n");
  UseDef UD = useDef(Code[0]);
  EXPECT_TRUE(UD.Def.test(predLoc(3)));
  EXPECT_TRUE(UD.Use.test(0));
}

TEST(CfgTest, SuccessorsOfBranches) {
  auto Code = assembleOrDie("top:\n"
                            "  cmp.eq.1.dw p1 = vr0, 0\n"
                            "  br p1, top\n"
                            "  jmp end\n"
                            "  nop\n"
                            "end:\n"
                            "  halt\n");
  EXPECT_EQ(successors(Code, 0), (std::vector<uint32_t>{1}));
  EXPECT_EQ(successors(Code, 1), (std::vector<uint32_t>{2, 0}));
  EXPECT_EQ(successors(Code, 2), (std::vector<uint32_t>{4}));
  EXPECT_TRUE(successors(Code, 4).empty()); // halt
}

TEST(CfgTest, BrAsFinalInstructionFallsOffEnd) {
  // A conditional branch as the last instruction: the not-taken edge is
  // the one-past-the-end fall-off index, which models an implicit halt.
  auto Code = assembleOrDie("top:\n"
                            "  add.1.dw vr8 = vr0, 1\n"
                            "  cmp.lt.1.dw p1 = vr8, 4\n"
                            "  br p1, top\n");
  EXPECT_EQ(successors(Code, 2), (std::vector<uint32_t>{3, 0}));
  auto Live = liveOut(Code); // must tolerate the out-of-range successor
  ASSERT_EQ(Live.size(), 3u);
  EXPECT_TRUE(Live[2].test(0)); // vr0 is live around the back edge
}

TEST(CfgTest, BackEdgeOnlyLoopConverges) {
  // An infinite loop whose body is reached only through its back edge
  // after the first iteration; the fixpoint must still terminate.
  auto Code = assembleOrDie("  mov.1.dw vr8 = 0\n"
                            "spin:\n"
                            "  add.1.dw vr8 = vr8, 1\n"
                            "  jmp spin\n");
  EXPECT_EQ(successors(Code, 2), (std::vector<uint32_t>{1}));
  auto Live = liveOut(Code);
  EXPECT_TRUE(Live[2].test(8)); // vr8 is loop-carried forever
  EXPECT_TRUE(lintKernel(Code, 0).clean());
}

TEST(CfgTest, UnreachableExitBlock) {
  // The halt exists but can never execute; liveness treats it as a
  // normal node and lint reports it as unreachable.
  auto Code = assembleOrDie("spin:\n"
                            "  jmp spin\n"
                            "  halt\n");
  EXPECT_EQ(successors(Code, 0), (std::vector<uint32_t>{0}));
  auto Live = liveOut(Code);
  EXPECT_TRUE(Live[0].none());
  LintReport R = lintKernel(Code, 0);
  bool Unreachable = false;
  for (const std::string &N : R.notes())
    if (N.find("unreachable") != std::string::npos)
      Unreachable = true;
  EXPECT_TRUE(Unreachable);
}

TEST(CfgTest, EmptyKernel) {
  // An empty program is a legal kernel (immediate halt on dispatch).
  std::vector<Instruction> Code;
  EXPECT_TRUE(liveOut(Code).empty());
  LintReport R = lintKernel(Code, 0);
  EXPECT_TRUE(R.clean());
  ASSERT_FALSE(R.notes().empty());
  EXPECT_NE(R.notes()[0].find("empty"), std::string::npos);
}

TEST(LivenessTest, ValueDeadAfterLastUse) {
  auto Code = assembleOrDie("  mov.1.dw vr1 = 5\n"
                            "  add.1.dw vr2 = vr1, 1\n"
                            "  mov.1.dw vr3 = 9\n"
                            "  st.1.dw (surf0, vr2, 0) = vr3\n"
                            "  halt\n");
  auto Live = liveOut(Code);
  EXPECT_TRUE(Live[0].test(1));  // vr1 live until the add
  EXPECT_FALSE(Live[1].test(1)); // dead after
  EXPECT_TRUE(Live[1].test(2));  // vr2 live into the store
  EXPECT_FALSE(Live[3].test(2)); // nothing live after the store
}

TEST(LivenessTest, LoopCarriesLiveness) {
  auto Code = assembleOrDie("  mov.1.dw vr0 = 0\n"
                            "loop:\n"
                            "  add.1.dw vr0 = vr0, 1\n"
                            "  cmp.lt.1.dw p1 = vr0, 10\n"
                            "  br p1, loop\n"
                            "  halt\n");
  auto Live = liveOut(Code);
  // vr0 is live around the back edge.
  EXPECT_TRUE(Live[3].test(0));
  EXPECT_TRUE(Live[0].test(0));
}

//===----------------------------------------------------------------------===//
// Peephole rewrites
//===----------------------------------------------------------------------===//

namespace {

/// Optimizes the given source and returns (code, stats). Keeps a store so
/// results stay live.
std::pair<std::vector<Instruction>, OptStats> optimizeSrc(const char *Asm) {
  auto Code = assembleOrDie(Asm);
  OptStats Stats = optimizeKernel(Code);
  return {Code, Stats};
}

} // namespace

TEST(PeepholeTest, MulByPow2BecomesShift) {
  auto [Code, Stats] = optimizeSrc("  mul.1.dw vr1 = vr0, 8\n"
                                   "  st.1.dw (surf0, vr2, 0) = vr1\n"
                                   "  halt\n");
  ASSERT_GE(Code.size(), 1u);
  EXPECT_EQ(Code[0].Op, Opcode::Shl);
  EXPECT_EQ(Code[0].Src1.Imm, 3);
  EXPECT_EQ(Stats.StrengthReduced, 1u);
}

TEST(PeepholeTest, MulImmediateCanonicalizes) {
  auto [Code, Stats] = optimizeSrc("  mul.1.dw vr1 = 16, vr0\n"
                                   "  st.1.dw (surf0, vr2, 0) = vr1\n"
                                   "  halt\n");
  EXPECT_EQ(Code[0].Op, Opcode::Shl);
  EXPECT_EQ(Code[0].Src0.Reg0, 0);
  EXPECT_EQ(Stats.StrengthReduced, 1u);
}

TEST(PeepholeTest, MulByOneAndZero) {
  auto [Code, Stats] = optimizeSrc("  mul.1.dw vr1 = vr0, 1\n"
                                   "  mul.1.dw vr3 = vr0, 0\n"
                                   "  st.1.dw (surf0, vr1, 0) = vr3\n"
                                   "  halt\n");
  EXPECT_EQ(Code[0].Op, Opcode::Mov);
  EXPECT_EQ(Code[1].Op, Opcode::Mov);
  EXPECT_EQ(Code[1].Src0.Imm, 0);
  EXPECT_EQ(Stats.AlgebraicSimplified, 2u);
}

TEST(PeepholeTest, AddAndShiftIdentities) {
  auto [Code, Stats] = optimizeSrc("  add.1.dw vr1 = vr0, 0\n"
                                   "  shl.1.dw vr2 = vr1, 0\n"
                                   "  and.1.dw vr3 = vr2, -1\n"
                                   "  st.1.dw (surf0, vr3, 0) = vr3\n"
                                   "  halt\n");
  EXPECT_GE(Stats.AlgebraicSimplified, 3u);
}

TEST(PeepholeTest, FloatIdentitiesAreNotTouched) {
  // x + 0.0f is not an identity for -0.0f; the optimizer must leave
  // float arithmetic alone.
  auto [Code, Stats] = optimizeSrc("  add.1.f vr1 = vr0, 0\n"
                                   "  st.1.f (surf0, vr2, 0) = vr1\n"
                                   "  halt\n");
  EXPECT_EQ(Code[0].Op, Opcode::Add);
  EXPECT_EQ(Stats.AlgebraicSimplified, 0u);
}

TEST(PeepholeTest, DeadCodeRemovedAcrossBranches) {
  // Note: a self-referencing loop value (x = x * 3) is correctly *kept*
  // by plain liveness (it feeds itself); the dead instructions here write
  // registers nothing ever reads.
  auto [Code, Stats] = optimizeSrc("  mov.1.dw vr9 = 42\n" // dead
                                   "  mov.1.dw vr0 = 0\n"
                                   "loop:\n"
                                   "  add.1.dw vr0 = vr0, 1\n"
                                   "  mul.8.dw [vr16..vr23] = [vr24..vr31], 3\n" // dead
                                   "  cmp.lt.1.dw p1 = vr0, 4\n"
                                   "  br p1, loop\n"
                                   "  st.1.dw (surf0, vr0, 0) = vr0\n"
                                   "  halt\n");
  EXPECT_GE(Stats.DeadRemoved, 2u);
  // The loop must survive and its branch target must be remapped: run it.
  for (const Instruction &I : Code) {
    if (I.Op == Opcode::Br) {
      EXPECT_LT(static_cast<size_t>(I.Src0.Imm), Code.size());
    }
  }
}

TEST(PeepholeTest, DivAndF64NeverRemoved) {
  // Both may fault (CEH); they are observable even when results are dead.
  auto [Code, Stats] = optimizeSrc("  div.1.dw vr5 = vr0, vr1\n"
                                   "  add.1.df [vr10..vr11] = [vr2..vr3], [vr2..vr3]\n"
                                   "  halt\n");
  ASSERT_EQ(Code.size(), 3u);
  EXPECT_EQ(Code[0].Op, Opcode::Div);
  EXPECT_EQ(Code[1].Op, Opcode::Add);
  EXPECT_EQ(Stats.DeadRemoved, 0u);
}

TEST(PeepholeTest, IdentityMovRemoved) {
  auto [Code, Stats] = optimizeSrc("  mov.4.dw [vr0..vr3] = [vr0..vr3]\n"
                                   "  st.1.dw (surf0, vr0, 0) = vr0\n"
                                   "  halt\n");
  EXPECT_EQ(Stats.IdentityMovesRemoved, 1u);
  EXPECT_EQ(Code[0].Op, Opcode::St);
}

TEST(PeepholeTest, LineTableAndLabelsRemapped) {
  auto K = cantFail(xasm::assembleKernel("  mov.1.dw vr9 = 1\n" // dead
                                         "  mov.1.dw vr0 = 7\n"
                                         "tail:\n"
                                         "  st.1.dw (surf0, vr0, 0) = vr0\n"
                                         "  halt\n",
                                         xasm::SymbolBindings()));
  ASSERT_EQ(K.Code.size(), 4u);
  OptStats Stats = optimizeKernel(K.Code, &K.Lines, &K.Labels);
  EXPECT_GE(Stats.DeadRemoved, 1u);
  ASSERT_EQ(K.Code.size(), 3u);
  ASSERT_EQ(K.Lines.size(), 3u);
  EXPECT_EQ(K.Lines[0], 2u);          // the surviving mov's source line
  EXPECT_EQ(K.Labels.at("tail"), 1u); // label shifted down by one
}

//===----------------------------------------------------------------------===//
// Optimizer semantic equivalence (property test): random ALU programs
// produce identical register dumps before and after optimization.
//===----------------------------------------------------------------------===//

namespace {

/// Generates a random straight-line integer ALU program over vr0..vr15
/// (all initialized from parameters), ending by storing vr0..vr7.
std::string randomAluProgram(Rng &R) {
  static const char *Ops[] = {"add", "sub", "mul", "min", "max",
                              "and", "or",  "xor", "shl", "shr"};
  std::string Src;
  unsigned N = static_cast<unsigned>(R.nextInRange(4, 24));
  for (unsigned K = 0; K < N; ++K) {
    const char *Op = Ops[R.nextBelow(std::size(Ops))];
    unsigned D = static_cast<unsigned>(R.nextBelow(16));
    unsigned A = static_cast<unsigned>(R.nextBelow(16));
    if (R.nextBelow(3) == 0) {
      int32_t Imm = static_cast<int32_t>(R.nextInRange(-4, 64));
      Src += formatString("  %s.1.dw vr%u = vr%u, %d\n", Op, D, A, Imm);
    } else {
      unsigned B = static_cast<unsigned>(R.nextBelow(16));
      Src += formatString("  %s.1.dw vr%u = vr%u, vr%u\n", Op, D, A, B);
    }
  }
  Src += "  mov.1.dw vr30 = 0\n";
  Src += "  st.8.dw (out, vr30, 0) = [vr0..vr7]\n";
  Src += "  halt\n";
  return Src;
}

/// Runs \p Code on the device with params vr0..vr15 = seed-derived values
/// and returns the 8 stored words.
std::vector<int32_t> runProgram(const std::vector<Instruction> &Code,
                                uint64_t Seed) {
  exo::ExoPlatform P;
  exo::SharedBuffer Out = P.allocateShared(64, "out");
  gma::KernelImage Img;
  Img.Code = Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));

  auto Table = std::make_shared<gma::SurfaceTable>();
  gma::SurfaceBinding S;
  S.Base = Out.Base;
  S.Width = 16;
  Table->push_back(S);

  gma::ShredDescriptor D;
  D.KernelId = Kid;
  Rng R(Seed);
  for (unsigned K = 0; K < 16; ++K)
    D.Params.push_back(static_cast<int32_t>(R.next()));
  D.Surfaces = Table;
  P.device().enqueueShred(std::move(D));
  auto Exit = P.device().run(0.0);
  EXPECT_TRUE(static_cast<bool>(Exit)) << Exit.message();

  std::vector<int32_t> V(8);
  P.read(Out.Base, V.data(), 32);
  return V;
}

} // namespace

class OptimizerEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerEquivalenceTest, OptimizedProgramComputesSameResult) {
  Rng R(GetParam() * 7919 + 3);
  std::string Src = randomAluProgram(R);
  xasm::SymbolBindings Binds;
  Binds.bindSurface("out", 0);
  auto K = xasm::assembleKernel(Src, Binds);
  ASSERT_TRUE(static_cast<bool>(K)) << K.message() << "\n" << Src;

  std::vector<Instruction> Optimized = K->Code;
  OptStats Stats = optimizeKernel(Optimized);
  (void)Stats;

  auto Before = runProgram(K->Code, GetParam());
  auto After = runProgram(Optimized, GetParam());
  EXPECT_EQ(Before, After) << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 25));

//===----------------------------------------------------------------------===//
// Printer round trip
//===----------------------------------------------------------------------===//

TEST(PrinterTest, ControlFlowRoundTrips) {
  const char *Src = "  mov.1.dw vr0 = 0\n"
                    "loop:\n"
                    "  add.1.dw vr0 = vr0, 1\n"
                    "  cmp.lt.1.dw p1 = vr0, 10\n"
                    "  br p1, loop\n"
                    "  (!p1) mov.2.dw [vr4..vr5] = 7\n"
                    "  sel.2.dw p1, [vr6..vr7] = [vr4..vr5], 0\n"
                    "  st.2.dw (surf3, vr0, 1) = [vr6..vr7]\n"
                    "  halt\n";
  auto K = cantFail(xasm::assembleKernel(Src, xasm::SymbolBindings()));
  std::string Printed = xasm::printKernel(K.Code, K.Labels);
  EXPECT_NE(Printed.find("loop:"), std::string::npos);

  auto K2 = xasm::assembleKernel(Printed, xasm::SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K2)) << K2.message() << "\n" << Printed;
  ASSERT_EQ(K2->Code.size(), K.Code.size());
  for (size_t Idx = 0; Idx < K.Code.size(); ++Idx)
    EXPECT_TRUE(K.Code[Idx] == K2->Code[Idx])
        << "instr " << Idx << ": " << disassemble(K.Code[Idx]) << " vs "
        << disassemble(K2->Code[Idx]);
}

TEST(PrinterTest, FloatImmediatesKeepTheirBits) {
  auto K = cantFail(xasm::assembleKernel(
      "  mul.4.f [vr0..vr3] = [vr4..vr7], 0.0039215689\n"
      "  add.1.f vr8 = vr9, 255\n"
      "  halt\n",
      xasm::SymbolBindings()));
  std::string Printed = xasm::printKernel(K.Code);
  auto K2 = xasm::assembleKernel(Printed, xasm::SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K2)) << K2.message() << "\n" << Printed;
  EXPECT_EQ(K.Code[0].Src1.Imm, K2->Code[0].Src1.Imm);
  EXPECT_EQ(K.Code[1].Src1.Imm, K2->Code[1].Src1.Imm);
}

class PrinterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrinterPropertyTest, RandomProgramsRoundTrip) {
  Rng R(GetParam() + 101);
  std::string Src = randomAluProgram(R);
  xasm::SymbolBindings Binds;
  Binds.bindSurface("out", 0);
  auto K = cantFail(xasm::assembleKernel(Src, Binds));

  std::string Printed = xasm::printKernel(K.Code);
  auto K2 = xasm::assembleKernel(Printed, xasm::SymbolBindings());
  ASSERT_TRUE(static_cast<bool>(K2)) << K2.message() << "\n" << Printed;
  ASSERT_EQ(K2->Code.size(), K.Code.size());
  for (size_t Idx = 0; Idx < K.Code.size(); ++Idx)
    EXPECT_TRUE(K.Code[Idx] == K2->Code[Idx]) << Printed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrinterPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

//===----------------------------------------------------------------------===//
// Lint
//===----------------------------------------------------------------------===//

TEST(LintTest, CleanKernelHasNoWarnings) {
  auto Code = assembleOrDie("  mov.1.dw vr8 = 1\n"
                            "  add.1.dw vr9 = vr8, vr0\n"
                            "  st.1.dw (surf0, vr9, 0) = vr8\n"
                            "  halt\n");
  LintReport R = lintKernel(Code, /*NumScalarParams=*/1);
  EXPECT_TRUE(R.clean()) << R.warnings().front();
}

TEST(LintTest, ReadBeforeWriteWarns) {
  auto Code = assembleOrDie("  add.1.dw vr1 = vr9, 1\n" // vr9 never written
                            "  st.1.dw (surf0, vr1, 0) = vr1\n"
                            "  halt\n");
  LintReport R = lintKernel(Code, 1);
  ASSERT_FALSE(R.clean());
  EXPECT_NE(R.warnings()[0].find("vr9"), std::string::npos);
  EXPECT_EQ(R.firstProblem()->Instr, 0u); // the offending instruction
}

TEST(LintTest, ParamsCountAsInitialized) {
  auto Code = assembleOrDie("  add.1.dw vr8 = vr0, vr1\n"
                            "  st.1.dw (surf0, vr8, 0) = vr8\n"
                            "  halt\n");
  EXPECT_FALSE(lintKernel(Code, 2).clean() == false);
  EXPECT_FALSE(lintKernel(Code, 1).clean()); // vr1 not a param now
}

TEST(LintTest, PathSensitiveInitialization) {
  // vr8 written on only one arm -> possibly uninitialized at the join.
  auto Code = assembleOrDie("  cmp.eq.1.dw p1 = vr0, 0\n"
                            "  br p1, skip\n"
                            "  mov.1.dw vr8 = 5\n"
                            "skip:\n"
                            "  st.1.dw (surf0, vr0, 0) = vr8\n"
                            "  halt\n");
  LintReport R = lintKernel(Code, 1);
  ASSERT_FALSE(R.clean());
  EXPECT_NE(R.warnings()[0].find("vr8"), std::string::npos);

  // Written on both arms -> clean.
  auto Code2 = assembleOrDie("  cmp.eq.1.dw p1 = vr0, 0\n"
                             "  br p1, other\n"
                             "  mov.1.dw vr8 = 5\n"
                             "  jmp join\n"
                             "other:\n"
                             "  mov.1.dw vr8 = 6\n"
                             "join:\n"
                             "  st.1.dw (surf0, vr0, 0) = vr8\n"
                             "  halt\n");
  EXPECT_TRUE(lintKernel(Code2, 1).clean());
}

TEST(LintTest, LoopInitializationConverges) {
  // The induction variable is written before the loop: clean.
  auto Code = assembleOrDie("  mov.1.dw vr8 = 0\n"
                            "loop:\n"
                            "  add.1.dw vr8 = vr8, 1\n"
                            "  cmp.lt.1.dw p1 = vr8, vr0\n"
                            "  br p1, loop\n"
                            "  st.1.dw (surf0, vr8, 0) = vr8\n"
                            "  halt\n");
  EXPECT_TRUE(lintKernel(Code, 1).clean());
}

TEST(LintTest, UnreachableCodeNoted) {
  auto Code = assembleOrDie("  jmp end\n"
                            "  mov.1.dw vr8 = 1\n"
                            "end:\n"
                            "  halt\n");
  LintReport R = lintKernel(Code, 0);
  ASSERT_FALSE(R.notes().empty());
  EXPECT_NE(R.notes()[0].find("unreachable"), std::string::npos);
}

TEST(LintTest, FallOffAndUnusedParamsNoted) {
  auto Code = assembleOrDie("  mov.1.dw vr8 = vr0\n"
                            "  st.1.dw (surf0, vr8, 0) = vr8\n");
  LintReport R = lintKernel(Code, 3); // vr1, vr2 unused
  EXPECT_TRUE(R.clean());
  bool FallOff = false, Unused = false;
  for (const std::string &N : R.notes()) {
    if (N.find("fall off") != std::string::npos)
      FallOff = true;
    if (N.find("vr2") != std::string::npos)
      Unused = true;
  }
  EXPECT_TRUE(FallOff);
  EXPECT_TRUE(Unused);
}

TEST(LintTest, UninitializedPredicateWarns) {
  auto Code = assembleOrDie("  (p5) add.1.dw vr8 = vr0, 1\n"
                            "  st.1.dw (surf0, vr0, 0) = vr0\n"
                            "  halt\n");
  LintReport R = lintKernel(Code, 1);
  ASSERT_FALSE(R.clean());
  EXPECT_NE(R.warnings()[0].find("p5"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ProgramBuilder integration
//===----------------------------------------------------------------------===//

TEST(ProgramBuilderXoptTest, LintPolicyRejects) {
  chi::ProgramBuilder PB;
  PB.setLintPolicy(chi::LintPolicy::RejectOnWarning);
  auto Bad = PB.addXgmaKernel("bad", "  add.1.dw vr8 = vr9, 1\n  halt\n",
                              {"x"}, {});
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("uninitialized"), std::string::npos);
}

TEST(ProgramBuilderXoptTest, LintPolicyCollects) {
  chi::ProgramBuilder PB;
  auto Ok = PB.addXgmaKernel("iffy", "  add.1.dw vr8 = vr9, 1\n  halt\n",
                             {"x"}, {});
  ASSERT_TRUE(static_cast<bool>(Ok)) << Ok.message();
  const xopt::LintReport *R = PB.lintReport("iffy");
  ASSERT_NE(R, nullptr);
  EXPECT_FALSE(R->clean());
}

TEST(ProgramBuilderXoptTest, OptimizerShrinksNaiveKernel) {
  chi::ProgramBuilder PB;
  PB.setOptimize(true);
  const char *Naive = R"(
    mul.1.dw vr1 = i, 8
    add.1.dw vr1 = vr1, 0
    mov.8.dw [vr40..vr47] = [vr40..vr47]
    mov.8.dw [vr30..vr37] = 99
    ld.8.dw [vr2..vr9] = (A, vr1, 0)
    add.8.dw [vr2..vr9] = [vr2..vr9], 1
    st.8.dw (A, vr1, 0) = [vr2..vr9]
    halt
  )";
  auto Id = PB.addXgmaKernel("naive", Naive, {"i"}, {"A"});
  ASSERT_TRUE(static_cast<bool>(Id)) << Id.message();
  xopt::OptStats S = PB.optStats("naive");
  EXPECT_GE(S.StrengthReduced, 1u);      // mul 8 -> shl 3
  EXPECT_GE(S.AlgebraicSimplified, 1u);  // add 0
  EXPECT_GE(S.IdentityMovesRemoved, 1u); // self-move
  EXPECT_GE(S.DeadRemoved, 1u);          // unused vr30 group

  // 8 instructions in, at most 5 out.
  auto Prog = cantFail(
      isa::decodeProgram(PB.binary().findByName("naive")->Code));
  EXPECT_LE(Prog.size(), 5u);
}

TEST(ProgramBuilderXoptTest, MediaKernelsPassStrictLint) {
  // Every Table 2 kernel must compile cleanly under RejectOnWarning —
  // i.e. the production kernels are free of read-before-write bugs.
  for (int K = 0; K < 10; ++K) {
    // (mirrors tests/kernels_test.cpp's factory indices)
    chi::ProgramBuilder PB;
    PB.setLintPolicy(chi::LintPolicy::RejectOnWarning);
    std::unique_ptr<kernels::MediaWorkload> WL;
    switch (K) {
    case 0: WL = kernels::createLinearFilter(64, 32); break;
    case 1: WL = kernels::createSepiaTone(64, 32); break;
    case 2: WL = kernels::createFGT(64, 32); break;
    case 3: WL = kernels::createBicubic(64, 32, 2); break;
    case 4: WL = kernels::createKalman(64, 32, 2); break;
    case 5: WL = kernels::createFMD(64, 32, 12); break;
    case 6: WL = kernels::createAlphaBlend(64, 32, 2); break;
    case 7: WL = kernels::createBOB(64, 32, 2); break;
    case 8: WL = kernels::createADVDI(64, 32, 2); break;
    default: WL = kernels::createProcAmp(64, 32, 2); break;
    }
    Error E = WL->compile(PB);
    EXPECT_FALSE(static_cast<bool>(E))
        << WL->abbrev() << ": " << E.message();
  }
}

TEST(ProgramBuilderXoptTest, MediaKernelsSurviveOptimizationBitExact) {
  // Optimizing the production kernels must not change their output.
  exo::ExoPlatform P;
  chi::Runtime RT(P);
  auto WL = kernels::createSepiaTone(64, 32);
  chi::ProgramBuilder PB;
  PB.setOptimize(true);
  cantFail(WL->compile(PB));
  cantFail(RT.loadBinary(PB.binary()));
  cantFail(WL->setup(RT));
  Error E = WL->verify(RT);
  EXPECT_FALSE(static_cast<bool>(E)) << E.message();
}

TEST(PrinterTest, AllMediaKernelsRoundTrip) {
  // Every production kernel's generated assembly must survive
  // print -> re-assemble bit-exactly (surfaces become surfN, scalars are
  // already vrN after the first assembly).
  for (int K = 0; K < 10; ++K) {
    std::unique_ptr<kernels::MediaWorkload> WL;
    switch (K) {
    case 0: WL = kernels::createLinearFilter(64, 32); break;
    case 1: WL = kernels::createSepiaTone(64, 32); break;
    case 2: WL = kernels::createFGT(64, 32); break;
    case 3: WL = kernels::createBicubic(64, 32, 2); break;
    case 4: WL = kernels::createKalman(64, 32, 2); break;
    case 5: WL = kernels::createFMD(64, 32, 12); break;
    case 6: WL = kernels::createAlphaBlend(64, 32, 2); break;
    case 7: WL = kernels::createBOB(64, 32, 2); break;
    case 8: WL = kernels::createADVDI(64, 32, 2); break;
    default: WL = kernels::createProcAmp(64, 32, 2); break;
    }
    chi::ProgramBuilder PB;
    cantFail(WL->compile(PB));
    for (const fatbin::CodeSection &S : PB.binary().sections()) {
      auto Prog = cantFail(isa::decodeProgram(S.Code));
      std::string Printed = xasm::printKernel(Prog, S.Debug.Labels);
      auto Back = xasm::assembleKernel(Printed, xasm::SymbolBindings());
      ASSERT_TRUE(static_cast<bool>(Back))
          << WL->abbrev() << ": " << Back.message();
      ASSERT_EQ(Back->Code.size(), Prog.size()) << WL->abbrev();
      for (size_t Idx = 0; Idx < Prog.size(); ++Idx)
        EXPECT_TRUE(Prog[Idx] == Back->Code[Idx])
            << WL->abbrev() << " instr " << Idx << ": "
            << disassemble(Prog[Idx]);
    }
  }
}
