//===- tests/integration_test.cpp - Cross-module integration scenarios --------===//

#include "chi/ChiApi.h"
#include "chi/ParallelRegion.h"
#include "chi/ProgramBuilder.h"
#include "kernels/Workloads.h"
#include "support/File.h"
#include "support/Random.h"
#include "xasm/Assembler.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace exochi;
using namespace exochi::chi;

namespace {

constexpr const char *ScaleAsm = R"(
  shl.1.dw vr10 = i, 3
  ld.8.dw [vr2..vr9] = (buf, vr10, 0)
  mul.8.dw [vr2..vr9] = [vr2..vr9], k
  st.8.dw (buf, vr10, 0) = [vr2..vr9]
  halt
)";

/// Builds a one-kernel platform rig around ScaleAsm.
struct ScaleRig {
  ScaleRig() : RT(Platform) {
    ProgramBuilder PB;
    cantFail(PB.addXgmaKernel("scale", ScaleAsm, {"i", "k"}, {"buf"})
                 .takeError());
    Binary = PB.take();
    cantFail(RT.loadBinary(Binary));
    Buf = Platform.allocateShared(N * 4, "buf");
    for (unsigned K = 0; K < N; ++K)
      Platform.store<int32_t>(Buf.Base + K * 4, static_cast<int32_t>(K));
    Desc = cantFail(
        chi_alloc_desc(RT, X3000, Buf.Base, CHI_INOUT, N, 1));
  }

  Expected<RegionHandle> run(int32_t Factor) {
    ParallelRegion R(RT, TargetIsa::X3000, "scale");
    R.shared("buf", Desc)
        .firstprivate("k", Factor)
        .privateVar("i", [](unsigned T) { return static_cast<int32_t>(T); })
        .numThreads(N / 8);
    return R.execute();
  }

  static constexpr unsigned N = 128;
  exo::ExoPlatform Platform;
  Runtime RT;
  fatbin::FatBinary Binary;
  exo::SharedBuffer Buf;
  uint32_t Desc = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Fat binary on disk: the offline toolchain path.
//===----------------------------------------------------------------------===//

TEST(FileRoundTripTest, FatBinaryThroughDisk) {
  ProgramBuilder PB;
  cantFail(
      PB.addXgmaKernel("scale", ScaleAsm, {"i", "k"}, {"buf"}).takeError());
  std::string Path = ::testing::TempDir() + "/exochi_roundtrip.xfb";
  cantFail(writeFileBytes(Path, PB.binary().serialize()));

  auto Bytes = readFileBytes(Path);
  ASSERT_TRUE(static_cast<bool>(Bytes)) << Bytes.message();
  auto FB = fatbin::FatBinary::deserialize(*Bytes);
  ASSERT_TRUE(static_cast<bool>(FB)) << FB.message();

  // The reloaded binary drives a full run.
  exo::ExoPlatform P;
  Runtime RT(P);
  cantFail(RT.loadBinary(*FB));
  exo::SharedBuffer Buf = P.allocateShared(64 * 4, "buf");
  for (unsigned K = 0; K < 64; ++K)
    P.store<int32_t>(Buf.Base + K * 4, static_cast<int32_t>(K));
  uint32_t Desc =
      cantFail(chi_alloc_desc(RT, X3000, Buf.Base, CHI_INOUT, 64, 1));
  ParallelRegion R(RT, TargetIsa::X3000, "scale");
  R.shared("buf", Desc).firstprivate("k", 3).privateVar(
      "i", [](unsigned T) { return static_cast<int32_t>(T); });
  R.numThreads(8);
  cantFail(R.execute().takeError());
  for (unsigned K = 0; K < 64; ++K)
    EXPECT_EQ(P.load<int32_t>(Buf.Base + K * 4), static_cast<int32_t>(K * 3));
  std::remove(Path.c_str());
}

TEST(FileRoundTripTest, FileErrorsAreDiagnosed) {
  auto Missing = readFileBytes("/nonexistent/path/file.xfb");
  ASSERT_FALSE(static_cast<bool>(Missing));
  EXPECT_NE(Missing.message().find("cannot open"), std::string::npos);
  Error E = writeFileBytes("/nonexistent/dir/out.xfb", {1, 2, 3});
  EXPECT_TRUE(static_cast<bool>(E));
}

//===----------------------------------------------------------------------===//
// Repeated dispatch, clock semantics, stats accumulation.
//===----------------------------------------------------------------------===//

TEST(RuntimeIntegrationTest, ChainedRegionsComposeFunctionally) {
  ScaleRig Rig;
  cantFail(Rig.run(3).takeError());
  cantFail(Rig.run(5).takeError());
  for (unsigned K = 0; K < ScaleRig::N; ++K)
    EXPECT_EQ(Rig.Platform.load<int32_t>(Rig.Buf.Base + K * 4),
              static_cast<int32_t>(K * 15));
  EXPECT_EQ(Rig.RT.totalShredsSpawned(), 2 * ScaleRig::N / 8);
}

TEST(RuntimeIntegrationTest, ClockAdvancesMonotonically) {
  ScaleRig Rig;
  double T0 = Rig.RT.now();
  cantFail(Rig.run(2).takeError());
  double T1 = Rig.RT.now();
  EXPECT_GT(T1, T0);
  cpu::WorkEstimate W;
  W.VectorOps = 1000;
  Rig.RT.runHostWork(W);
  EXPECT_GT(Rig.RT.now(), T1);
}

TEST(RuntimeIntegrationTest, WaitAllCoversPendingRegions) {
  ScaleRig Rig;
  ParallelRegion R(Rig.RT, TargetIsa::X3000, "scale");
  R.shared("buf", Rig.Desc)
      .firstprivate("k", 2)
      .privateVar("i", [](unsigned T) { return static_cast<int32_t>(T); })
      .numThreads(ScaleRig::N / 8)
      .masterNowait();
  auto H = R.execute();
  ASSERT_TRUE(static_cast<bool>(H));
  double Before = Rig.RT.now();
  Rig.RT.waitAll();
  EXPECT_GT(Rig.RT.now(), Before);
  EXPECT_GE(Rig.RT.now(), Rig.RT.regionStats(*H)->EndNs);
}

TEST(RuntimeIntegrationTest, UnknownHandlesAreDiagnosed) {
  ScaleRig Rig;
  EXPECT_EQ(Rig.RT.regionStats(999), nullptr);
  Error E = Rig.RT.wait(999);
  EXPECT_TRUE(static_cast<bool>(E));
  EXPECT_TRUE(static_cast<bool>(Rig.RT.markHostWrote(999, 10)));
}

//===----------------------------------------------------------------------===//
// TLB invalidation after the host remaps a page.
//===----------------------------------------------------------------------===//

TEST(TlbCoherenceTest, RemapRequiresInvalidation) {
  ScaleRig Rig;
  exo::ExoPlatform &P = Rig.Platform;

  cantFail(Rig.run(2).takeError()); // warm the device TLB

  // The host remaps the buffer's first page to a fresh frame holding
  // different data (e.g. a copy-on-write event).
  mem::VirtAddr PageVa = Rig.Buf.Base & ~mem::PageOffsetMask;
  uint64_t NewFrame = P.physicalMemory().allocFrame();
  for (unsigned K = 0; K < 64; ++K)
    P.physicalMemory().write32((NewFrame << mem::PageShift) + K * 4, 1000 + K);
  P.addressSpace().unmapPage(PageVa);
  P.addressSpace().mapPageToFrame(PageVa, NewFrame, /*Writable=*/true);

  // Without invalidation the device would still translate to the old
  // frame; the platform invalidates, the next run sees the new data.
  P.device().invalidateTlbs();
  cantFail(Rig.run(1).takeError());
  EXPECT_EQ(P.load<int32_t>(Rig.Buf.Base), 1000);
}

//===----------------------------------------------------------------------===//
// Surface memory types: write-combining bypasses the device cache.
//===----------------------------------------------------------------------===//

TEST(SurfaceTilingTest, WriteCombiningIsFunctionallyIdentical) {
  auto RunWith = [](mem::GpuMemType MT) {
    ScaleRig Rig;
    cantFail(Rig.RT.modifyDesc(Rig.Desc, DescAttr::Tiling,
                               static_cast<int64_t>(MT)));
    cantFail(Rig.run(7).takeError());
    std::vector<int32_t> Out(ScaleRig::N);
    Rig.Platform.read(Rig.Buf.Base, Out.data(), Out.size() * 4);
    return Out;
  };
  EXPECT_EQ(RunWith(mem::GpuMemType::Cached),
            RunWith(mem::GpuMemType::WriteCombining));
}

TEST(SurfaceTilingTest, UncachedSurfacesSkipTheCache) {
  ScaleRig Rig;
  cantFail(Rig.RT.modifyDesc(
      Rig.Desc, DescAttr::Tiling,
      static_cast<int64_t>(mem::GpuMemType::Uncached)));
  cantFail(Rig.run(2).takeError());
  const gma::GmaRunStats &S = Rig.RT.regionStats(1)->Device;
  // The surface itself bypasses the cache; the only cached traffic left
  // is the shred-descriptor record fetches (one per shred).
  EXPECT_LE(S.CacheHits + S.CacheMisses, ScaleRig::N / 8);
  EXPECT_GT(S.MemoryOps, 0u);
}

//===----------------------------------------------------------------------===//
// Permuted dispatch: scheduling order must not change results.
//===----------------------------------------------------------------------===//

TEST(PermutedDispatchTest, ShuffledOrderBitExact) {
  auto Run = [](bool Shuffle) {
    exo::ExoPlatform P;
    Runtime RT(P);
    auto WL = kernels::createSepiaTone(64, 32);
    ProgramBuilder PB;
    cantFail(WL->compile(PB));
    cantFail(RT.loadBinary(PB.binary()));
    cantFail(WL->setup(RT));
    std::vector<uint64_t> Order;
    for (uint64_t S = 0; S < WL->totalStrips(); ++S)
      Order.push_back(S);
    if (Shuffle) {
      Rng R(0x5ff1e);
      for (size_t K = Order.size(); K > 1; --K)
        std::swap(Order[K - 1], Order[R.nextBelow(K)]);
    }
    cantFail(WL->dispatchDevicePermuted(RT, Order).takeError());
    cantFail(WL->hostCompute(0, WL->totalStrips()));
    return WL->compareSharedToReference(RT);
  };
  Error A = Run(false);
  EXPECT_FALSE(static_cast<bool>(A)) << A.message();
  Error B = Run(true);
  EXPECT_FALSE(static_cast<bool>(B)) << B.message();
}

//===----------------------------------------------------------------------===//
// Dirty tracking drives the NonCC flush only when the host produced data.
//===----------------------------------------------------------------------===//

TEST(DirtyTrackingTest, PartialHostWritesFlushProportionally) {
  ScaleRig Rig;
  Rig.RT.setMemoryModel(MemoryModel::NonCCShared);
  Rig.RT.setIntelligentFlush(false);

  auto H1 = Rig.run(2);
  ASSERT_TRUE(static_cast<bool>(H1));
  double FullFlush = Rig.RT.regionStats(*H1)->FlushNs;
  EXPECT_GT(FullFlush, 0.0);

  // Host rewrites one quarter of the buffer.
  cantFail(Rig.RT.markHostWrote(Rig.Desc, ScaleRig::N));
  auto H2 = Rig.run(3);
  ASSERT_TRUE(static_cast<bool>(H2));
  double PartialFlush = Rig.RT.regionStats(*H2)->FlushNs;
  EXPECT_GT(PartialFlush, 0.0);
  EXPECT_LT(PartialFlush, FullFlush);
}

//===----------------------------------------------------------------------===//
// The work queue's continuation records live in shared virtual memory:
// the device must read the authoritative parameter values from memory
// (through ATR), not from the host-side descriptor copy.
//===----------------------------------------------------------------------===//

TEST(SharedQueueTest, DeviceFetchesParamsFromSharedMemory) {
  exo::ExoPlatform P;
  exo::SharedBuffer Out = P.allocateShared(16, "out");
  exo::SharedBuffer Rec = P.allocateShared(16, "record");

  xasm::SymbolBindings Binds;
  Binds.bindScalar("v", 0);
  Binds.bindSurface("out", 0);
  auto K = cantFail(xasm::assembleKernel("  mov.1.dw vr10 = 0\n"
                                         "  st.1.dw (out, vr10, 0) = v\n"
                                         "  halt\n",
                                         Binds));
  gma::KernelImage Img;
  Img.Code = K.Code;
  uint32_t Kid = P.device().registerKernel(std::move(Img));

  auto Table = std::make_shared<gma::SurfaceTable>();
  gma::SurfaceBinding S;
  S.Base = Out.Base;
  S.Width = 4;
  Table->push_back(S);

  gma::ShredDescriptor D;
  D.KernelId = Kid;
  D.Params = {111}; // stale host-side copy
  D.Surfaces = Table;
  D.RecordVa = Rec.Base;
  P.store<int32_t>(Rec.Base, 222); // the authoritative record
  P.device().enqueueShred(std::move(D));

  ASSERT_TRUE(static_cast<bool>(P.device().run(0.0)));
  // The shred must have read 222 from shared memory, not the stale 111.
  EXPECT_EQ(P.load<int32_t>(Out.Base), 222);
}

//===----------------------------------------------------------------------===//
// Multi-kernel fat binary with disjoint ABIs.
//===----------------------------------------------------------------------===//

TEST(MultiKernelTest, TwoKernelsShareOneBinaryAndPlatform) {
  ProgramBuilder PB;
  cantFail(PB.addXgmaKernel("fill", "  st.1.dw (out, i, 0) = v\n  halt\n",
                            {"i", "v"}, {"out"})
               .takeError());
  cantFail(PB.addXgmaKernel("double",
                            "  ld.1.dw vr8 = (out, i, 0)\n"
                            "  add.1.dw vr8 = vr8, vr8\n"
                            "  st.1.dw (out, i, 0) = vr8\n"
                            "  halt\n",
                            {"i"}, {"out"})
               .takeError());

  exo::ExoPlatform P;
  Runtime RT(P);
  cantFail(RT.loadBinary(PB.binary()));
  exo::SharedBuffer Out = P.allocateShared(32 * 4, "out");
  uint32_t Desc =
      cantFail(chi_alloc_desc(RT, X3000, Out.Base, CHI_INOUT, 32, 1));

  ParallelRegion Fill(RT, TargetIsa::X3000, "fill");
  Fill.shared("out", Desc).firstprivate("v", 21).privateVar(
      "i", [](unsigned T) { return static_cast<int32_t>(T); });
  Fill.numThreads(32);
  cantFail(Fill.execute().takeError());

  ParallelRegion Double(RT, TargetIsa::X3000, "double");
  Double.shared("out", Desc).privateVar(
      "i", [](unsigned T) { return static_cast<int32_t>(T); });
  Double.numThreads(32);
  cantFail(Double.execute().takeError());

  for (unsigned K = 0; K < 32; ++K)
    EXPECT_EQ(P.load<int32_t>(Out.Base + K * 4), 42);
}
