//===- tests/cluster_test.cpp - ExoCluster multi-device sharding -------------===//
//
// Tests for ExoCluster (DESIGN.md §16): the device-global kernel table
// shared across GmaDevice instances, shred-range sharding with
// cooperative work stealing (including the IA32 host lane), per-shard
// serving statistics, shard drain, deadline preemption across shards,
// and the determinism contract — bit-identical surface outputs for
// every device count, SimThreads value, steal setting, and steal seed
// (the 8-seed soak, which doubles as this label's TSan lane).
//
//===----------------------------------------------------------------------===//

#include "cluster/Cluster.h"

#include "chi/ProgramBuilder.h"
#include "chi/Runtime.h"
#include "exo/ExoPlatform.h"
#include "serve/Server.h"

#include <gtest/gtest.h>

using namespace exochi;

namespace {

constexpr const char *VecAddAsm = R"(
  shl.1.dw vr1 = i, 3
  ld.8.dw  [vr2..vr9]   = (A, vr1, 0)
  ld.8.dw  [vr10..vr17] = (B, vr1, 0)
  add.8.dw [vr18..vr25] = [vr2..vr9], [vr10..vr17]
  st.8.dw  (C, vr1, 0)  = [vr18..vr25]
  halt
)";

/// splitmix64 — seeds the per-run input surfaces.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Platform with \p Devices GMA devices + runtime + vecadd + seeded
/// input surfaces; Shreds shreds of 8 elements each.
struct ClusterRig {
  static exo::PlatformConfig configFor(unsigned Devices) {
    exo::PlatformConfig C;
    C.NumDevices = Devices;
    return C;
  }

  ClusterRig(unsigned Devices, unsigned SimThreads = 1, uint64_t Seed = 1,
             unsigned Shreds = 32)
      : Platform(configFor(Devices)), RT(Platform), Shreds(Shreds),
        N(Shreds * 8) {
    Platform.setSimThreads(SimThreads);
    chi::ProgramBuilder PB;
    cantFail(PB.addXgmaKernel("vecadd", VecAddAsm, {"i"}, {"A", "B", "C"})
                 .takeError());
    cantFail(RT.loadBinary(PB.take()));
    A = Platform.allocateShared(N * 4, "A");
    B = Platform.allocateShared(N * 4, "B");
    C = Platform.allocateShared(N * 4, "C");
    for (unsigned K = 0; K < N; ++K) {
      Platform.store<int32_t>(A.Base + K * 4,
                              static_cast<int32_t>(mix64(Seed * N + K)));
      Platform.store<int32_t>(B.Base + K * 4,
                              static_cast<int32_t>(mix64(Seed * N + K + N)));
      Platform.store<int32_t>(C.Base + K * 4, 0);
    }
    ADesc = cantFail(RT.allocDesc(chi::TargetIsa::X3000, A.Base,
                                  chi::SurfaceMode::Input, N, 1));
    BDesc = cantFail(RT.allocDesc(chi::TargetIsa::X3000, B.Base,
                                  chi::SurfaceMode::Input, N, 1));
    CDesc = cantFail(RT.allocDesc(chi::TargetIsa::X3000, C.Base,
                                  chi::SurfaceMode::Output, N, 1));
  }

  chi::RegionSpec makeRegion() const {
    chi::RegionSpec Spec;
    Spec.KernelName = "vecadd";
    Spec.NumThreads = Shreds;
    Spec.SharedDescs = {{"A", ADesc}, {"B", BDesc}, {"C", CDesc}};
    Spec.Private["i"] = [](unsigned T) { return static_cast<int32_t>(T); };
    return Spec;
  }

  std::vector<int32_t> readC() {
    std::vector<int32_t> Out(N);
    for (unsigned K = 0; K < N; ++K)
      Out[K] = Platform.load<int32_t>(C.Base + K * 4);
    return Out;
  }

  void verifyResult() {
    std::vector<int32_t> Out = readC();
    for (unsigned K = 0; K < N; ++K)
      ASSERT_EQ(Out[K], Platform.load<int32_t>(A.Base + K * 4) +
                            Platform.load<int32_t>(B.Base + K * 4))
          << "element " << K;
  }

  exo::ExoPlatform Platform;
  chi::Runtime RT;
  unsigned Shreds, N;
  exo::SharedBuffer A, B, C;
  uint32_t ADesc = 0, BDesc = 0, CDesc = 0;
};

} // namespace

//===----------------------------------------------------------------------===//
// Device-global kernel table
//===----------------------------------------------------------------------===//

TEST(ClusterTest, KernelTableIsSharedAcrossDevices) {
  ClusterRig R(/*Devices=*/3);
  ASSERT_EQ(R.Platform.numDevices(), 3u);
  // One table object, every device sees every registered kernel (and
  // its decode cache) without per-device re-registration.
  EXPECT_EQ(R.Platform.device(0).kernelTable().get(),
            R.Platform.device(1).kernelTable().get());
  EXPECT_EQ(R.Platform.device(0).kernelTable().get(),
            R.Platform.device(2).kernelTable().get());
  for (unsigned D = 0; D < 3; ++D) {
    const gma::KernelImage *K = R.Platform.device(D).kernel(1);
    ASSERT_NE(K, nullptr) << "device " << D;
    EXPECT_EQ(K->Name, "vecadd");
  }
}

//===----------------------------------------------------------------------===//
// Sharding & stealing
//===----------------------------------------------------------------------===//

TEST(ClusterTest, ShardRowsCoverEveryShredExactlyOnce) {
  ClusterRig R(/*Devices=*/4);
  auto H = R.RT.dispatch(R.makeRegion());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  const chi::RegionStats *S = R.RT.regionStats(*H);
  ASSERT_FALSE(S->DeadlinePreempted);
  R.verifyResult();

  ASSERT_GE(S->Shards.size(), 2u) << "a 4-device dispatch must shard";
  uint64_t Sum = 0;
  unsigned PrevLane = 0;
  bool First = true;
  for (const chi::ShardStat &Row : S->Shards) {
    EXPECT_GT(Row.Shreds, 0u) << "lane " << Row.Lane;
    if (!First) {
      EXPECT_GT(Row.Lane, PrevLane) << "rows must be sorted by lane";
    }
    First = false;
    PrevLane = Row.Lane;
    if (Row.HostLane) {
      EXPECT_EQ(Row.Lane, R.Platform.numDevices());
    } else {
      EXPECT_LT(Row.Lane, R.Platform.numDevices());
    }
    Sum += Row.Shreds;
  }
  EXPECT_EQ(Sum, R.Shreds) << "every shred executed on exactly one lane";
  EXPECT_EQ(S->Device.ShredsExecuted, R.Shreds);
}

TEST(ClusterTest, HostLaneStealsFromBusyDevices) {
  ClusterRig R(/*Devices=*/2);
  cluster::ClusterConfig CC;
  CC.ChunkShreds = 4; // small chunks leave plenty to steal
  R.RT.setClusterConfig(CC);
  auto H = R.RT.dispatch(R.makeRegion());
  ASSERT_TRUE(static_cast<bool>(H)) << H.message();
  const chi::RegionStats *S = R.RT.regionStats(*H);
  R.verifyResult();

  const chi::ShardStat *Host = nullptr;
  for (const chi::ShardStat &Row : S->Shards)
    if (Row.HostLane)
      Host = &Row;
  ASSERT_NE(Host, nullptr) << "the IA32 lane never executed a shred";
  EXPECT_GT(Host->Stolen, 0u)
      << "the host lane only acquires work by stealing";
  EXPECT_EQ(Host->Shreds, Host->Stolen);
}

TEST(ClusterTest, StealSeedVariesScheduleNeverResults) {
  std::vector<int32_t> Baseline;
  for (uint64_t StealSeed : {0ull, 1ull, 99ull}) {
    ClusterRig R(/*Devices=*/4, /*SimThreads=*/1, /*Seed=*/7);
    cluster::ClusterConfig CC;
    CC.StealSeed = StealSeed;
    CC.ChunkShreds = 4;
    R.RT.setClusterConfig(CC);
    auto H = R.RT.dispatch(R.makeRegion());
    ASSERT_TRUE(static_cast<bool>(H)) << H.message();
    if (Baseline.empty()) {
      Baseline = R.readC();
    } else {
      EXPECT_EQ(R.readC(), Baseline)
          << "surfaces diverged at steal seed " << StealSeed;
    }
    // Same seed twice: the steal trace itself is deterministic.
    ClusterRig R2(/*Devices=*/4, /*SimThreads=*/1, /*Seed=*/7);
    R2.RT.setClusterConfig(CC);
    auto H2 = R2.RT.dispatch(R2.makeRegion());
    ASSERT_TRUE(static_cast<bool>(H2)) << H2.message();
    EXPECT_EQ(R2.RT.regionStats(*H2)->Shards, R.RT.regionStats(*H)->Shards)
        << "steal trace not reproducible at seed " << StealSeed;
  }
}

//===----------------------------------------------------------------------===//
// Deadlines across shards
//===----------------------------------------------------------------------===//

TEST(ClusterTest, DeadlinePreemptsFleetWideAndAccountsEveryShred) {
  for (unsigned SimThreads : {1u, 4u}) {
    SCOPED_TRACE("SimThreads=" + std::to_string(SimThreads));
    ClusterRig R(/*Devices=*/2, SimThreads);
    chi::RegionSpec Spec = R.makeRegion();
    Spec.DeadlineNs = 1.0; // expires before the first epoch completes
    auto H = R.RT.dispatch(Spec);
    ASSERT_TRUE(static_cast<bool>(H)) << H.message();
    const chi::RegionStats *S = R.RT.regionStats(*H);
    EXPECT_TRUE(S->DeadlinePreempted);
    EXPECT_GT(S->Device.ShredsPreempted, 0u);
    EXPECT_EQ(S->Device.ShredsExecuted + S->Device.ShredsPreempted, R.Shreds)
        << "every shred either executed or was preempted, exactly once";
  }
}

//===----------------------------------------------------------------------===//
// Serving across shards
//===----------------------------------------------------------------------===//

TEST(ClusterTest, BreakerSpansTheFleet) {
  ClusterRig R(/*Devices=*/3);
  serve::Server S(R.RT);
  EXPECT_EQ(S.breaker().numEus(),
            R.Platform.config().Gma.NumEus * R.Platform.numDevices())
      << "one breaker unit per EU across every device";
}

TEST(ClusterTest, ShardDrainRoutesJobsAroundTheDevice) {
  ClusterRig R(/*Devices=*/2);
  serve::Server S(R.RT);
  S.setShardDrain(0, true);
  EXPECT_TRUE(S.shardDrained(0));

  serve::JobSpec J;
  J.Region = R.makeRegion();
  ASSERT_TRUE(S.submit(J).Admitted);
  ASSERT_TRUE(S.runNext().has_value());
  ASSERT_EQ(S.jobs().front().State, serve::JobState::Completed);
  R.verifyResult();
  for (const serve::ShardRow &Row : S.stats().Shards)
    EXPECT_NE(Row.Lane, 0u) << "a drained shard must receive no work";

  // Lifting the drain readmits the device on the next dispatch.
  S.setShardDrain(0, false);
  serve::JobSpec J2;
  J2.Region = R.makeRegion();
  ASSERT_TRUE(S.submit(J2).Admitted);
  ASSERT_TRUE(S.runNext().has_value());
  bool Lane0 = false;
  for (const serve::ShardRow &Row : S.stats().Shards)
    Lane0 |= Row.Lane == 0;
  EXPECT_TRUE(Lane0) << "the readmitted device never rejoined";
}

//===----------------------------------------------------------------------===//
// The determinism soak (TSan lane): 8 seeds x devices {1,2,4} x
// SimThreads {1,4} x steal on/off — bit-identical surface outputs.
//===----------------------------------------------------------------------===//

TEST(ClusterSoakTest, SurfacesBitIdenticalAcrossDevicesThreadsAndStealing) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    SCOPED_TRACE("seed=" + std::to_string(Seed));
    std::vector<int32_t> Baseline;
    for (unsigned Devices : {1u, 2u, 4u}) {
      for (unsigned SimThreads : {1u, 4u}) {
        for (bool Steal : {true, false}) {
          ClusterRig R(Devices, SimThreads, Seed);
          cluster::ClusterConfig CC;
          CC.Steal = Steal;
          CC.StealSeed = Seed;
          R.RT.setClusterConfig(CC);
          auto H = R.RT.dispatch(R.makeRegion());
          ASSERT_TRUE(static_cast<bool>(H)) << H.message();
          ASSERT_EQ(R.RT.regionStats(*H)->Device.ShredsExecuted, R.Shreds);
          if (Baseline.empty()) {
            Baseline = R.readC();
            R.verifyResult();
          } else {
            ASSERT_EQ(R.readC(), Baseline)
                << "devices=" << Devices << " simThreads=" << SimThreads
                << " steal=" << Steal;
          }
        }
      }
    }
  }
}
